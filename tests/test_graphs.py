"""Tests for the distributed-graph workload (synthetic graph + BFS)."""

import pytest

from repro import LAPTOP, make_runtime
from repro.apps.graphs import BfsResult, DistributedBfs, make_graph
from repro.sim import RngPool


def graph(n=300, d=6.0, seed=5):
    return make_graph(n, d, RngPool(seed).stream("g"))


# ---------------------------------------------------------------------------
# graph generator
# ---------------------------------------------------------------------------
def test_graph_structure_invariants():
    adj = graph()
    assert len(adj) == 300
    for v, nbrs in enumerate(adj):
        assert v not in nbrs                       # no self loops
        assert len(nbrs) == len(set(nbrs))         # no duplicates
        for u in nbrs:
            assert v in adj[u]                     # undirected


def test_graph_is_connected_enough():
    adj = graph()
    rt = make_runtime("lci", platform=LAPTOP, n_localities=1)
    bfs = DistributedBfs(rt, adj)
    depth, _ = bfs.reference_bfs(0)
    # preferential attachment builds one giant component
    assert len(depth) == len(adj)


def test_graph_degree_skew():
    adj = graph(n=500, d=8.0)
    degrees = sorted(len(a) for a in adj)
    # scale-free-ish: the hubs are far above the median
    assert degrees[-1] > 3 * degrees[len(degrees) // 2]


def test_graph_deterministic_per_seed():
    assert graph(seed=9) == graph(seed=9)
    assert graph(seed=9) != graph(seed=10)


def test_graph_tiny_rejected():
    with pytest.raises(ValueError):
        make_graph(1, 4.0, RngPool(0).stream("g"))


# ---------------------------------------------------------------------------
# distributed BFS
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi", "tcp",
                                    "lci_sr_sy_mt"])
def test_bfs_matches_reference(config):
    adj = graph()
    rt = make_runtime(config, platform=LAPTOP, n_localities=3)
    bfs = DistributedBfs(rt, adj)
    res = bfs.run(root=0, max_events=20_000_000)
    ref_depth, ref_levels = bfs.reference_bfs(0)
    assert res.visited == len(ref_depth)
    assert res.levels == ref_levels
    # every parent edge actually exists in the graph
    for v, p in res.parents.items():
        if v != res.root:
            assert p in adj[v]


def test_bfs_single_locality_no_network():
    adj = graph(n=100)
    rt = make_runtime("lci", platform=LAPTOP, n_localities=1)
    bfs = DistributedBfs(rt, adj)
    res = bfs.run(root=0, max_events=5_000_000)
    assert res.visited == 100
    assert rt.fabric.stats.counters.get("msgs", 0) == 0


def test_bfs_from_different_roots():
    adj = graph(n=150)
    for root in (0, 77, 149):
        rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP,
                          n_localities=2)
        bfs = DistributedBfs(rt, adj)
        res = bfs.run(root=root, max_events=20_000_000)
        ref_depth, _ = bfs.reference_bfs(root)
        assert res.visited == len(ref_depth)
        assert res.parents[root] == root


def test_bfs_invalid_root_rejected():
    adj = graph(n=50)
    rt = make_runtime("lci", platform=LAPTOP, n_localities=2)
    bfs = DistributedBfs(rt, adj)
    with pytest.raises(ValueError):
        bfs.run(root=50)


def test_bfs_teps_metric():
    r = BfsResult(root=0, levels=3, visited=10, edges_traversed=500,
                  time_us=1000.0)
    assert r.teps == pytest.approx(500 / 1e-3)
    r0 = BfsResult(root=0, levels=0, visited=1, edges_traversed=0,
                   time_us=0.0)
    assert r0.teps == 0.0


def test_bfs_parcel_accounting_in_default_mode():
    adj = graph(n=300, d=8.0)
    rt = make_runtime("lci_psr_cq_pin", platform=LAPTOP, n_localities=3)
    bfs = DistributedBfs(rt, adj)
    res = bfs.run(root=0, max_events=20_000_000)
    layers = [loc.parcel_layer for loc in rt.localities]
    parcels = sum(l.stats.counters.get("parcels_sent", 0) for l in layers)
    messages = sum(l.stats.counters.get("messages_sent", 0)
                   for l in layers)
    # queue-mode invariant: every parcel leaves in some message, and
    # messages never outnumber parcels (each level's relaxations flow
    # through one worker, so aggregation here is opportunistic)
    assert messages > 0
    assert parcels >= messages
    assert res.visited == 300
