"""White-box tests of parcelport internals: headers on the wire,
pending-list behaviour, completion plumbing, determinism."""

import pytest

from repro import LAPTOP, make_runtime
from repro.parcelport.header import HEADER_BASE_BYTES
from repro.parcelport.mpi_pp import HEADER_TAG, RELEASE_TAG


def run_n(config, sizes, n_loc=2, seed=0xC0FFEE):
    rt = make_runtime(config, platform=LAPTOP, n_localities=n_loc,
                      seed=seed)
    done = rt.new_latch(len(sizes))

    def sink(worker, i, blob):
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def sender(worker):
        for i, size in enumerate(sizes):
            yield from rt.locality(0).apply(worker, 1, "sink", (i, "x"),
                                            arg_sizes=[8, size])

    rt.boot()
    rt.locality(0).spawn(sender)
    rt.run_until(done, max_events=3_000_000)
    return rt


# ---------------------------------------------------------------------------
# wire-level accounting
# ---------------------------------------------------------------------------
def test_small_message_single_wire_message_lci_psr():
    rt = run_n("lci_psr_cq_pin_i", [8])
    # 8 B payload piggybacks fully: exactly one put on the wire
    assert rt.fabric.stats.counters["msgs"] == 1


def test_zero_copy_message_wire_sequence_lci():
    rt = run_n("lci_psr_cq_pin_i", [16384])
    # put (header) + rts + cts + data = 4 wire messages
    assert rt.fabric.stats.counters["msgs"] == 4
    dev = rt.localities[1].parcelport.device
    assert dev.stats.counters["puts_delivered"] == 1
    assert dev.stats.counters["long_recvs"] == 1


def test_zero_copy_message_wire_sequence_mpi():
    rt = run_n("mpi_i", [16384])
    mpi1 = rt.localities[1].parcelport.mpi
    # header eager, then rendezvous for the 16 KiB chunk: 4 KiB fragments
    assert mpi1.stats.counters["eager_recvs"] == 1
    assert mpi1.stats.counters["rndv_frags"] == 4
    assert mpi1.stats.counters["rndv_recvs"] == 1


def test_mpi_headers_use_tag_zero():
    rt = run_n("mpi_i", [8, 8, 8])
    # every header irecv was ANY_SOURCE/tag-0 and matched
    assert HEADER_TAG == 0
    assert rt.localities[1].parcelport.stats.counters[
        "headers_received"] == 3


def test_original_variant_wire_bytes_include_static_header():
    rt_new = run_n("mpi_i", [8])
    rt_orig = run_n("mpi_orig", [8])
    new_bytes = rt_new.fabric.stats.accum["bytes"]
    orig_bytes = rt_orig.fabric.stats.accum["bytes"]
    # the original sends a fixed 512 B header (plus a tag-release later)
    assert orig_bytes > new_bytes
    assert RELEASE_TAG == 1


# ---------------------------------------------------------------------------
# pending/completion bookkeeping drains
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config", ["mpi", "mpi_i", "mpi_orig"])
def test_mpi_pending_list_drains(config):
    rt = run_n(config, [8, 20000, 64, 30000])
    for loc in rt.localities:
        assert len(loc.parcelport.pending) == 0
        assert loc.parcelport.mpi.posted_count <= 2  # header (+release)


@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "lci_psr_sy_pin_i",
                                    "lci_sr_cq_mt_i"])
def test_lci_state_drains(config):
    rt = run_n(config, [8, 20000, 64, 30000])
    for loc in rt.localities:
        pp = loc.parcelport
        assert len(pp.comp_cq) == 0
        for cq in pp.header_cqs:
            assert len(cq) == 0
        assert len(pp.sync_pending) == 0
        for dev in pp.devices:
            assert dev.unexpected_count == 0
            # sr keeps exactly one persistent header recv posted
            expected = 1 if pp.protocol == "sr" else 0
            assert dev.posted_count == expected
            assert dev.pool.in_use == 0  # all packets returned


def test_lci_packet_pool_exhaustion_retries():
    from repro.lci_sim import DEFAULT_LCI_PARAMS
    from repro.parcelport import PPConfig, make_parcelport_factory
    from repro.hpx_rt import HpxRuntime

    cfg = PPConfig.parse("lci_psr_cq_pin_i")
    # tiny pool + slow NIC: packets are pinned in the TX pipeline long
    # enough that senders hit the non-blocking retry path
    params = DEFAULT_LCI_PARAMS.with_(packet_count=2)
    slow_net = LAPTOP.network.with_(bytes_per_us=5.0, tx_overhead_us=10.0)
    platform = LAPTOP.with_(network=slow_net)
    rt = HpxRuntime(platform, 2, make_parcelport_factory(cfg,
                                                         lci_params=params),
                    immediate=True)
    done = rt.new_latch(40)

    def sink(worker, i):
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def burst(worker):
        for i in range(40):
            yield from rt.locality(0).apply(worker, 1, "sink", (i,))

    rt.boot()
    rt.locality(0).spawn(burst)
    rt.run_until(done, max_events=3_000_000)
    pp = rt.localities[0].parcelport
    # the tiny pool forced retries, yet everything was delivered
    assert pp.stats.counters.get("pool_retries", 0) > 0


# ---------------------------------------------------------------------------
# determinism of the full stack
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi", "tcp"])
def test_full_stack_determinism(config):
    t1 = run_n(config, [8, 20000, 64], seed=7).now
    t2 = run_n(config, [8, 20000, 64], seed=7).now
    assert t1 == t2


def test_seed_changes_are_isolated_to_workload_noise():
    # communication path itself is deterministic; different seeds only
    # matter where workloads draw jitter (none in this echo) -> equal
    t1 = run_n("lci_psr_cq_pin_i", [8, 64], seed=1).now
    t2 = run_n("lci_psr_cq_pin_i", [8, 64], seed=2).now
    assert t1 == t2
