"""Tests for the sweep utility and Octo-Tiger analysis helpers."""

import numpy as np
import pytest

from repro.apps.octotiger import (FmmModel, OctoTigerConfig, build_octree,
                                  partition_octree)
from repro.apps.octotiger.analysis import (communication_matrix,
                                           load_balance, traffic_summary)
from repro.bench.sweep import SweepResult, SweepSpec, run_sweep


# ---------------------------------------------------------------------------
# SweepSpec / run_sweep
# ---------------------------------------------------------------------------
def test_spec_points_cartesian_product():
    spec = SweepSpec(axes={"a": [1, 2], "b": ["x", "y", "z"]})
    pts = spec.points()
    assert len(pts) == 6
    assert {"a": 2, "b": "y"} in pts
    assert spec.size == 6


def test_spec_validation():
    with pytest.raises(ValueError):
        SweepSpec(axes={})
    with pytest.raises(ValueError):
        SweepSpec(axes={"a": []})


def test_run_sweep_invokes_fn_per_point_and_repeat():
    calls = []

    def fn(a, seed):
        calls.append((a, seed))
        return {"m": a * 10.0}

    spec = SweepSpec(axes={"a": [1, 2]}, repeats=3)
    res = run_sweep(fn, spec)
    assert len(res) == 6
    assert len({s for _, s in calls}) == 3      # distinct seeds per point
    assert res.filter(a=2)[0]["m"] == 20.0
    assert res.metrics() == ["m"]


def test_run_sweep_metric_axis_collision_rejected():
    spec = SweepSpec(axes={"a": [1]})
    with pytest.raises(ValueError, match="collides"):
        run_sweep(lambda a, seed: {"a": 1.0}, spec)


def test_run_sweep_progress_callback():
    seen = []
    spec = SweepSpec(axes={"a": [1, 2]}, repeats=2)
    run_sweep(lambda a, seed: {"m": 0.0}, spec,
              progress=lambda done, total: seen.append((done, total)))
    assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]


def test_sweep_result_roundtrip(tmp_path):
    spec = SweepSpec(axes={"a": [1, 2]})
    res = run_sweep(lambda a, seed: {"m": float(a)}, spec)
    path = str(tmp_path / "sweep.json")
    res.save(path)
    loaded = SweepResult.load(path)
    assert loaded.axes == res.axes
    assert loaded.rows == res.rows


def test_to_series_groups_and_averages():
    spec = SweepSpec(axes={"cfg": ["x", "y"], "size": [8, 64]}, repeats=2)

    def fn(cfg, size, seed):
        return {"rate": size * (2.0 if cfg == "x" else 1.0)
                + (seed % 3)}

    res = run_sweep(fn, spec)
    series = res.to_series(x="size", y="rate", group_by="cfg")
    assert [s.label for s in series] == ["x", "y"]
    sx = series[0]
    assert sx.xs == [8.0, 64.0]
    assert sx.ys[1] > sx.ys[0]
    # repeats produce a (possibly zero) error bar
    assert len(sx.yerr) == 2


# ---------------------------------------------------------------------------
# Octo-Tiger analysis
# ---------------------------------------------------------------------------
def make_model(n_loc=4, substeps=2, fields=3):
    tree = build_octree(max_level=3, base_level=3)
    partition_octree(tree, n_loc)
    cfg = OctoTigerConfig(max_level=3, base_level=3, substeps=substeps,
                          boundary_fields=fields)
    return FmmModel(tree, n_loc, substeps=substeps, fields=fields), cfg


def test_load_balance_near_perfect_for_uniform_tree():
    model, _ = make_model()
    lb = load_balance(model)
    assert lb["leaves_total"] == 512
    assert lb["imbalance"] == pytest.approx(1.0, abs=0.02)


def test_communication_matrix_properties():
    model, cfg = make_model()
    mat = communication_matrix(model, cfg)
    n = model.n_localities
    assert mat.shape == (n, n)
    assert (np.diag(mat) == 0).all()
    assert mat.sum() > 0
    # boundary exchange is symmetric in bytes (same sizes both ways);
    # m2m/l2l adds symmetric pairs too when sizes match
    if cfg.m2m_bytes == cfg.l2l_bytes:
        assert (mat == mat.T).all()


def test_communication_scales_with_substeps_and_fields():
    m1, c1 = make_model(substeps=1, fields=1)
    m2, c2 = make_model(substeps=2, fields=3)
    t1 = traffic_summary(m1, c1)
    t2 = traffic_summary(m2, c2)
    assert t2["bytes_per_step"] > 5 * t1["bytes_per_step"]
    assert 0.0 < t1["remote_neighbor_fraction"] < 1.0


def test_traffic_summary_single_locality_zero():
    model, cfg = make_model(n_loc=1)
    t = traffic_summary(model, cfg)
    assert t["bytes_per_step"] == 0.0
    assert t["remote_neighbor_fraction"] == 0.0


def test_more_localities_more_remote_traffic():
    m2, c = make_model(n_loc=2)
    m8, _ = make_model(n_loc=8)
    assert traffic_summary(m8, c)["remote_neighbor_fraction"] > \
        traffic_summary(m2, c)["remote_neighbor_fraction"]
