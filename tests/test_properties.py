"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.apps.octotiger import build_octree, compute_neighbors, morton_key
from repro.hpx_rt import CostModel, Parcel, serialize_parcels, split_args
from repro.hpx_rt.parcel import (PARCEL_METADATA_BYTES,
                                 TRANSMISSION_ENTRY_BYTES)
from repro.parcelport import plan_header, tag_of
from repro.parcelport.header import HEADER_BASE_BYTES
from repro.parcelport.tagging import FIRST_DYNAMIC_TAG
from repro.sim import SerialResource, Simulator, SpinLock
from repro.sim.stats import summarize

COST = CostModel()

sizes = st.lists(st.integers(min_value=0, max_value=200_000),
                 min_size=1, max_size=20)


# ---------------------------------------------------------------------------
# serialization / chunking
# ---------------------------------------------------------------------------
@given(sizes)
def test_chunking_conserves_bytes(arg_sizes):
    """Every argument byte lands in exactly one chunk."""
    p = Parcel("a", dest=1, src=0, args=tuple(range(len(arg_sizes))),
               arg_sizes=tuple(arg_sizes))
    msg = serialize_parcels([p], COST)
    payload = sum(arg_sizes)
    overhead = PARCEL_METADATA_BYTES \
        + TRANSMISSION_ENTRY_BYTES * len(msg.zc_sizes)
    assert msg.total_bytes == payload + overhead
    # zero-copy chunks are exactly the args >= threshold
    assert sorted(msg.zc_sizes) == sorted(
        s for s in arg_sizes if s >= COST.zero_copy_threshold)


@given(sizes, st.integers(min_value=1, max_value=10))
def test_aggregation_is_additive(arg_sizes, n_parcels):
    parcels = [Parcel("a", dest=1, src=0, args=tuple(range(len(arg_sizes))),
                      arg_sizes=tuple(arg_sizes)) for _ in range(n_parcels)]
    one = serialize_parcels(parcels[:1], COST)
    many = serialize_parcels(parcels, COST)
    assert many.non_zc_size == n_parcels * one.non_zc_size
    assert len(many.zc_sizes) == n_parcels * len(one.zc_sizes)


@given(sizes, st.integers(min_value=HEADER_BASE_BYTES, max_value=65536))
def test_header_plan_conserves_chunks(arg_sizes, max_header):
    """Piggybacked chunks + follow-ups == all chunks, bytes conserved."""
    p = Parcel("a", dest=1, src=0, args=tuple(range(len(arg_sizes))),
               arg_sizes=tuple(arg_sizes))
    msg = serialize_parcels([p], COST)
    plan = plan_header(msg, max_header)
    assert plan.header_size <= max(max_header, HEADER_BASE_BYTES)
    followup_bytes = sum(s for _, s in plan.followups)
    assert plan.piggybacked_bytes + followup_bytes == msg.total_bytes
    # zero-copy chunks never piggyback
    zc_follow = [s for k, s in plan.followups if k == "zc"]
    assert sorted(zc_follow) == sorted(msg.zc_sizes)


# ---------------------------------------------------------------------------
# tagging
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=2 ** 40),
       st.integers(min_value=0, max_value=1000),
       st.integers(min_value=100, max_value=32767))
def test_tag_of_range_invariant(raw, offset, max_tag):
    t = tag_of(raw, offset, max_tag)
    assert FIRST_DYNAMIC_TAG <= t <= max_tag


@given(st.integers(min_value=0, max_value=2 ** 30))
def test_tag_blocks_are_consecutive_mod_span(raw):
    span = 32767 - FIRST_DYNAMIC_TAG + 1
    tags = [tag_of(raw, i, 32767) for i in range(5)]
    for a, b in zip(tags, tags[1:]):
        assert (b - a) % span == 1


# ---------------------------------------------------------------------------
# morton / octree
# ---------------------------------------------------------------------------
@given(st.integers(min_value=0, max_value=7), st.integers(0, 7),
       st.integers(0, 7), st.integers(min_value=0, max_value=7),
       st.integers(0, 7), st.integers(0, 7))
def test_morton_injective_at_level3(x1, y1, z1, x2, y2, z2):
    k1 = morton_key(x1, y1, z1, 3)
    k2 = morton_key(x2, y2, z2, 3)
    assert (k1 == k2) == ((x1, y1, z1) == (x2, y2, z2))


@given(st.integers(min_value=2, max_value=3),
       st.integers(min_value=0, max_value=1))
@settings(max_examples=10, deadline=None)
def test_octree_structure_invariants(base, extra):
    tree = build_octree(max_level=base + extra, base_level=base)
    # node ids dense and unique
    assert [n.nid for n in tree.nodes] == list(range(len(tree)))
    # leaves + interiors partition the nodes
    assert len(tree.leaves) + len(tree.interiors) == len(tree)
    # total volume of leaves == unit cube
    vol = sum(8.0 ** -n.level for n in tree.leaves)
    assert abs(vol - 1.0) < 1e-9


@given(st.integers(min_value=2, max_value=3))
@settings(max_examples=5, deadline=None)
def test_neighbor_relation_symmetric(level):
    tree = build_octree(max_level=level, base_level=level)
    nbrs = compute_neighbors(tree)
    for nid, lst in nbrs.items():
        assert len(lst) == len(set(lst))
        for m in lst:
            assert nid in nbrs[m]


# ---------------------------------------------------------------------------
# simulator primitives
# ---------------------------------------------------------------------------
@given(st.lists(st.floats(min_value=0.01, max_value=10.0),
                min_size=1, max_size=10))
@settings(max_examples=30, deadline=None)
def test_serial_resource_conserves_busy_time(service_times):
    sim = Simulator()
    res = SerialResource(sim)
    for s in service_times:
        res.request(s)
    sim.run()
    assert res.total_busy_us == sum(service_times)
    assert res.busy_until == sum(service_times)
    assert res.served == len(service_times)


@given(st.integers(min_value=1, max_value=8),
       st.floats(min_value=0.1, max_value=5.0))
@settings(max_examples=20, deadline=None)
def test_spinlock_never_double_held(n_procs, hold):
    sim = Simulator()
    lock = SpinLock(sim, acquire_cost=0.0)
    inside = [0]
    max_inside = [0]

    def proc(sim):
        yield lock.acquire()
        inside[0] += 1
        max_inside[0] = max(max_inside[0], inside[0])
        yield sim.timeout(hold)
        inside[0] -= 1
        lock.release()

    for _ in range(n_procs):
        sim.process(proc(sim))
    sim.run()
    assert max_inside[0] == 1
    assert lock.acquisitions == n_procs


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                min_size=1, max_size=50))
def test_summarize_consistency(values):
    s = summarize(values)
    assert s["n"] == len(values)
    # allow one ulp of floating-point summation slack
    slack = 1e-12 * max(abs(s["min"]), abs(s["max"]), 1e-300)
    assert s["min"] - slack <= s["mean"] <= s["max"] + slack
    assert s["std"] >= 0.0


# ---------------------------------------------------------------------------
# end-to-end message conservation
# ---------------------------------------------------------------------------
@given(st.sampled_from(["lci_psr_cq_pin_i", "lci_sr_sy_mt", "mpi",
                        "mpi_orig"]),
       st.lists(st.integers(min_value=1, max_value=30000),
                min_size=1, max_size=6))
@settings(max_examples=15, deadline=None)
def test_every_parcel_delivered_exactly_once(config, payload_sizes):
    """Message conservation: N sends -> exactly N action executions."""
    from repro import LAPTOP, make_runtime
    rt = make_runtime(config, platform=LAPTOP, n_localities=2)
    got = []
    done = rt.new_latch(len(payload_sizes))

    def sink(worker, idx, blob):
        got.append(idx)
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def sender(worker):
        for i, size in enumerate(payload_sizes):
            yield from rt.locality(0).apply(worker, 1, "sink", (i, "b"),
                                            arg_sizes=[8, size])

    rt.boot()
    rt.locality(0).spawn(sender)
    rt.run_until(done, max_events=3_000_000)
    assert sorted(got) == list(range(len(payload_sizes)))


# ---------------------------------------------------------------------------
# fault injection: same seed + plan => bit-identical schedule
# ---------------------------------------------------------------------------
@given(st.sampled_from(["lci_psr_cq_pin_i", "lci_sr_sy_mt", "mpi_i"]),
       st.integers(min_value=0, max_value=2 ** 16))
@settings(max_examples=8, deadline=None)
def test_faulty_runs_are_deterministic(config, seed):
    """Replaying a lossy run with the same seed reproduces it exactly:
    same final time, same delivery order, same fault counters."""
    from repro import FaultPlan, LAPTOP, RetryPolicy, make_runtime

    plan = FaultPlan(drop_prob=0.1, corrupt_prob=0.02)
    pol = RetryPolicy(timeout_us=300.0, max_retries=3)

    def run_once():
        rt = make_runtime(config, platform=LAPTOP, n_localities=2,
                          seed=seed, fault_plan=plan, retry_policy=pol)
        got, failed = [], []
        done = rt.new_latch(12)
        rt.on_parcel_failure = lambda p, exc: (failed.append(p.args[0]),
                                               done.count_down())

        def sink(worker, idx):
            got.append(idx)
            done.count_down()
            return None

        rt.register_action("sink", sink)

        def sender(worker):
            for i in range(12):
                yield from rt.locality(0).apply(worker, 1, "sink", (i,),
                                                arg_sizes=[64])

        rt.boot()
        rt.locality(0).spawn(sender)
        rt.run_until(done, max_events=5_000_000)
        return rt.sim.now, tuple(got), tuple(failed), rt.fault_summary()

    assert run_once() == run_once()


# ---------------------------------------------------------------------------
# TCP segmentation / collectives properties
# ---------------------------------------------------------------------------
@given(st.integers(min_value=1, max_value=500_000),
       st.integers(min_value=256, max_value=65536))
@settings(max_examples=25, deadline=None)
def test_tcp_segmentation_conserves_bytes(size, mss):
    from repro.netsim import Fabric, TESTNET
    from repro.tcp_sim import DEFAULT_TCP_PARAMS, TcpStack

    sim = Simulator()
    fabric = Fabric(sim, TESTNET)
    params = DEFAULT_TCP_PARAMS.with_(mss_bytes=mss)
    a = TcpStack(sim, fabric.add_node(0), 0, params)
    b = TcpStack(sim, fabric.add_node(1), 1, params)

    class W:
        def __init__(self):
            self.sim = sim

        def cpu(self, us):
            return sim.timeout(us)

    w = W()
    got = []

    def sender():
        yield from a.send_msg(w, 1, size, meta="m")

    def receiver():
        yield sim.timeout(1000.0)
        while not got:
            ready = yield from b.poll(w)
            got.extend(ready)
            yield sim.timeout(10.0)

    sim.process(sender())
    sim.process(receiver())
    sim.run(max_events=500_000)
    assert got == [(0, "m")]
    expected_segments = -(-max(size, 1) // mss)
    assert a.stats.counters["segments_sent"] == expected_segments
    assert b.stats.accum["bytes_recv"] == size


@given(st.integers(min_value=1, max_value=5),
       st.lists(st.integers(min_value=-100, max_value=100),
                min_size=1, max_size=5))
@settings(max_examples=10, deadline=None)
def test_allreduce_sum_matches_python_sum(n_loc, extra):
    from repro import LAPTOP, make_runtime
    from repro.hpx_rt import Collectives

    n_loc = min(n_loc, LAPTOP.max_nodes)
    values = (extra * n_loc)[:n_loc]
    rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP,
                      n_localities=n_loc)
    coll = Collectives(rt)
    done = rt.new_latch(n_loc)
    results = {}

    def make(lid):
        def task(worker):
            got = yield from coll.allreduce(worker, "s", values[lid],
                                            op="sum")
            results[lid] = got
            done.count_down()
        return task

    rt.boot()
    for lid in range(n_loc):
        rt.locality(lid).spawn(make(lid))
    rt.run_until(done, max_events=3_000_000)
    assert all(v == sum(values) for v in results.values())
