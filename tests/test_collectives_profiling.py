"""Tests for collectives and the profiling breakdown."""

import pytest

from repro import LAPTOP, make_runtime
from repro.bench.profiling import (format_breakdown, lock_report,
                                   runtime_breakdown)
from repro.hpx_rt.collectives import Collectives, REDUCTIONS


def run_collective(fn_builder, n_loc=3, config="lci_psr_cq_pin_i"):
    """Boot a runtime, run ``fn_builder(coll, results)`` on every locality."""
    rt = make_runtime(config, platform=LAPTOP, n_localities=n_loc)
    coll = Collectives(rt)
    done = rt.new_latch(n_loc)
    results = {}

    def make_task(lid):
        def task(worker):
            yield from fn_builder(coll, results, worker, lid)
            done.count_down()
        return task

    rt.boot()
    for lid in range(n_loc):
        rt.locality(lid).spawn(make_task(lid))
    rt.run_until(done, max_events=3_000_000)
    return rt, results


def test_barrier_synchronizes_all():
    arrive_t = {}
    leave_t = {}

    def body(coll, results, worker, lid):
        # stagger arrivals
        yield worker.cpu(float(lid) * 10.0)
        arrive_t[lid] = worker.sim.now
        yield from coll.barrier(worker, "b1")
        leave_t[lid] = worker.sim.now

    rt, _ = run_collective(body)
    assert max(arrive_t.values()) > min(arrive_t.values())
    # nobody leaves before the last arrival
    assert min(leave_t.values()) >= max(arrive_t.values())


def test_broadcast_delivers_root_value():
    def body(coll, results, worker, lid):
        value = "payload" if lid == 0 else None
        got = yield from coll.broadcast(worker, "bc", value, size=256)
        results[lid] = got

    rt, results = run_collective(body)
    assert results == {0: "payload", 1: "payload", 2: "payload"}


@pytest.mark.parametrize("op,expected", [("sum", 0 + 1 + 2),
                                         ("min", 0), ("max", 2),
                                         ("prod", 0)])
def test_allreduce_ops(op, expected):
    def body(coll, results, worker, lid):
        got = yield from coll.allreduce(worker, f"ar_{op}", lid, op=op)
        results[lid] = got

    rt, results = run_collective(body)
    assert all(v == expected for v in results.values())


def test_reduce_unknown_op_rejected():
    def body(coll, results, worker, lid):
        with pytest.raises(KeyError):
            yield from coll.reduce(worker, "bad", lid, op="median")

    run_collective(body, n_loc=1)


def test_collective_reuse_of_op_id():
    """Generations allow the same op_id back to back."""
    def body(coll, results, worker, lid):
        a = yield from coll.allreduce(worker, "x", 1, op="sum")
        b = yield from coll.allreduce(worker, "x", 2, op="sum")
        results[lid] = (a, b)

    rt, results = run_collective(body)
    assert all(v == (3, 6) for v in results.values())


def test_reductions_registry():
    assert set(REDUCTIONS) == {"sum", "min", "max", "prod"}


# ---------------------------------------------------------------------------
# profiling
# ---------------------------------------------------------------------------
def run_traffic(config):
    rt = make_runtime(config, platform=LAPTOP, n_localities=2)
    done = rt.new_latch(20)

    def sink(worker, i, blob):
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def sender(worker):
        for i in range(20):
            yield from rt.locality(0).apply(worker, 1, "sink", (i, "b"),
                                            arg_sizes=[8, 10000])

    rt.boot()
    rt.locality(0).spawn(sender)
    rt.run_until(done, max_events=3_000_000)
    return rt


def test_breakdown_mpi_reports_lock_metrics():
    rt = run_traffic("mpi_i")
    b = runtime_breakdown(rt)
    assert b["wire_msgs"] > 0
    assert b["mpi_progress_calls"] > 0
    assert b["mpi_lock_acquisitions"] > 0
    assert b["parcels_sent"] == 20
    assert "mpi progress-lock" in format_breakdown(b).lower()


def test_breakdown_lci_reports_progress_metrics():
    rt = run_traffic("lci_psr_cq_pin_i")
    b = runtime_breakdown(rt)
    assert b["lci_progress_calls"] > 0
    assert b["lci_msgs_progressed"] > 0
    assert "mpi_progress_calls" not in b
    text = format_breakdown(b)
    assert "LCI progress calls" in text


def test_lock_report_renders():
    rt = run_traffic("mpi")
    text = lock_report(rt)
    assert "mpi" in text and "wait/acq" in text


def test_breakdown_time_shares_consistent():
    rt = run_traffic("lci_psr_cq_pin_i")
    b = runtime_breakdown(rt)
    # no single accumulator can exceed total worker-time budget
    n_workers = sum(len(loc.workers) for loc in rt.localities)
    assert b["worker_cpu_us"] <= b["virtual_time_us"] * n_workers
