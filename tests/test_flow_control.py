"""End-to-end backpressure: credits, bounded backlogs, overload reaction.

Everything here runs under the ``flow`` marker (``pytest -m flow``) so CI
can smoke the flow-control paths separately from the tier-1 suite.
"""

import pytest

from repro import (FaultPlan, FlowControlPolicy, LAPTOP, ParcelShedError,
                   RetryPolicy, make_runtime)
from repro.faults import CreditStarve, PoolSqueeze, SlowReceiver
from repro.flow import OVERFLOW_SHED, SEND_OK, SEND_WOULD_BLOCK
from repro.parcelport.reliability import ReliabilityLayer
from repro.sim.core import Simulator
from repro.sim.rng import RngPool

pytestmark = pytest.mark.flow

#: one representative of each Table-1 configuration family
CONFIGS = ["lci_psr_cq_pin_i", "lci_sr_sy_mt", "mpi", "mpi_i", "mpi_orig"]

#: the default overload scenario: squeezed sender pool + slow receiver
OVERLOAD = "squeeze=0:3000@0*1,slow=0:4000@1*2"


# ---------------------------------------------------------------------------
# FlowControlPolicy: validation + backoff schedule
# ---------------------------------------------------------------------------
def test_policy_defaults_are_valid():
    fl = FlowControlPolicy()
    assert fl.credit_window > 0
    assert fl.overflow == "defer"


@pytest.mark.parametrize("kw", [
    {"credit_window": -1}, {"max_backlog": -1}, {"max_queued_parcels": -2},
    {"overflow": "panic"}, {"shed_sample": -1},
    {"pool_retry_base_us": 0.0}, {"pool_retry_backoff": 0.5},
    {"pool_retry_max_us": 0.5}, {"rendezvous_fallback_after": 0},
])
def test_policy_validation_rejects_bad_values(kw):
    with pytest.raises(ValueError):
        FlowControlPolicy(**kw)


def test_pool_wait_backoff_is_exponential_and_capped():
    fl = FlowControlPolicy(pool_retry_base_us=1.0, pool_retry_backoff=2.0,
                           pool_retry_max_us=16.0)
    assert [fl.pool_wait_us(k) for k in range(6)] == \
        [1.0, 2.0, 4.0, 8.0, 16.0, 16.0]


# ---------------------------------------------------------------------------
# fault DSL: the three overload tokens
# ---------------------------------------------------------------------------
def test_dsl_parses_overload_tokens_and_round_trips():
    plan = FaultPlan.parse("slow=0:100@1*5, squeeze=0:50@0*2, starve=10:20@1")
    assert plan.slows == (SlowReceiver(1, 0.0, 100.0, 5.0),)
    assert plan.squeezes == (PoolSqueeze(0, 0.0, 50.0, 2),)
    assert plan.starves == (CreditStarve(1, 10.0, 20.0),)
    assert not plan.is_zero
    assert FaultPlan.parse(plan.describe()) == plan


@pytest.mark.parametrize("bad", [
    "slow=0:100", "slow=100:0@1*5", "slow=0:100@1*-2",
    "squeeze=1:2@0", "squeeze=0:50@0*-1", "squeeze=5:5@0*2",
    "starve=10@1", "starve=20:10@1",
])
def test_dsl_rejects_malformed_overload_tokens(bad):
    with pytest.raises(ValueError):
        FaultPlan.parse(bad)


def test_overload_dataclass_validation():
    with pytest.raises(ValueError):
        SlowReceiver(0, 10.0, 10.0, 1.0)
    with pytest.raises(ValueError):
        SlowReceiver(0, 0.0, 10.0, -1.0)
    with pytest.raises(ValueError):
        PoolSqueeze(0, 0.0, 10.0, -1)
    with pytest.raises(ValueError):
        CreditStarve(0, 10.0, 5.0)


# ---------------------------------------------------------------------------
# ReliabilityLayer credit accounting (unit level)
# ---------------------------------------------------------------------------
def _rel(policy=None, window=0):
    sim = Simulator()
    rel = ReliabilityLayer(sim, policy or RetryPolicy(),
                           RngPool(7).stream("rel"))
    if window:
        rel.set_credit_window(window)
    return sim, rel


def test_credit_consume_and_release_bookkeeping():
    _, rel = _rel(window=2)
    assert rel.credits_left(1) == 2
    assert rel.consume_credit(1) and rel.consume_credit(1)
    assert not rel.consume_credit(1)
    assert rel.stats.get("credit_stalls") == 1
    rel._release_credit(1)
    assert rel.credits_left(1) == 1
    assert rel.has_credit(1)
    # has_credit is a pure peek: no counters moved
    assert rel.stats.get("credit_stalls") == 1


def test_credit_release_beyond_window_raises():
    _, rel = _rel(window=1)
    with pytest.raises(RuntimeError):
        rel._release_credit(3)


def test_zero_window_disables_credits():
    _, rel = _rel(window=0)
    for _ in range(100):
        assert rel.consume_credit(1)
    assert rel.stats.get("credits_consumed") == 0


class _FakeMsg:
    def __init__(self, dest=1):
        self.seq = None
        self.dest = dest
        self.credited = False


class _FakeConn:
    _next = 0

    def __init__(self):
        _FakeConn._next += 1
        self.cid = _FakeConn._next
        self.msg = None
        self.last_active = 0.0


def test_take_expired_honors_policy_drain_limit():
    sim, rel = _rel(policy=RetryPolicy(timeout_us=10.0, jitter=0.0,
                                       drain_limit=2))
    for _ in range(5):
        rel.track(_FakeMsg(), _FakeConn())
    assert rel.in_flight == 5
    # >limit burst: drained in drain_limit-sized slices
    first = rel.take_expired(1e9)
    assert len(first) == 2
    for e in first:
        rel.drop(e)
    assert len(rel.take_expired(1e9)) == 2
    # an explicit limit overrides the policy default
    sim2, rel2 = _rel(policy=RetryPolicy(timeout_us=10.0, jitter=0.0,
                                         drain_limit=2))
    for _ in range(5):
        rel2.track(_FakeMsg(), _FakeConn())
    assert len(rel2.take_expired(1e9, limit=10)) == 5


def test_take_expired_recvs_honors_policy_drain_limit():
    sim, rel = _rel(policy=RetryPolicy(timeout_us=10.0, drain_limit=3))
    for _ in range(7):
        rel.watch_recv(_FakeConn())
    assert rel.watched_recvs == 7
    assert len(rel.take_expired_recvs(1e9)) == 3
    assert len(rel.take_expired_recvs(1e9, limit=100)) == 4


def test_drain_limit_validation():
    with pytest.raises(ValueError):
        RetryPolicy(drain_limit=0)


# ---------------------------------------------------------------------------
# end-to-end harness
# ---------------------------------------------------------------------------
def _run_flow(config, plan=None, flow=None, n=40, seed=11, size=8,
              reliable=None, concurrent=False, sampler=None):
    """Send ``n`` parcels 0->1 under a flow policy; returns (rt, got, shed)."""
    rt = make_runtime(config, platform=LAPTOP, n_localities=2, seed=seed,
                      fault_plan=plan, flow_policy=flow, reliable=reliable)
    got, shed = [], []
    done = rt.new_latch(n)

    def on_fail(parcel, exc):
        shed.append((parcel.args[0], exc))
        done.count_down()

    rt.on_parcel_failure = on_fail

    def sink(worker, idx):
        got.append(idx)
        done.count_down()
        return None

    rt.register_action("sink", sink)
    loc0 = rt.locality(0)
    rt.boot()
    if concurrent:
        for i in range(n):
            def one(worker, i=i):
                yield from loc0.apply(worker, 1, "sink", (i,),
                                      arg_sizes=[size])
            loc0.spawn(one, name="inject")
    else:
        def sender(worker):
            for i in range(n):
                yield from loc0.apply(worker, 1, "sink", (i,),
                                      arg_sizes=[size])
        loc0.spawn(sender, name="inject")
    if sampler is not None:
        def tick():
            sampler(rt)
            rt.sim.schedule_call(25.0, tick)
        rt.sim.schedule_call(25.0, tick)
    rt.run_until(done, max_events=8_000_000)
    # let retransmit acks / credit returns drain fully
    rt.run_until(rt.sim.now + 30000.0, max_events=8_000_000)
    rt.shutdown()
    return rt, got, shed


# ---------------------------------------------------------------------------
# credit invariants: every family, squeezed pool + slow receiver
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config", CONFIGS)
def test_overload_delivers_exactly_once_with_credit_conservation(config):
    plan = FaultPlan.parse(OVERLOAD)
    flow = FlowControlPolicy(credit_window=4, max_backlog=8,
                             max_queued_parcels=16)
    rt, got, shed = _run_flow(config, plan=plan, flow=flow, n=40)
    assert sorted(got) == list(range(40)), "lost or duplicated parcels"
    assert shed == []
    for loc in rt.localities:
        rel = loc.parcelport.reliability
        assert rel is not None
        # conservation: all credits returned, nothing tracked forever
        assert rel.in_flight == 0
        for peer, left in rel._credits.items():
            assert left == rel.credit_window, (peer, left)
        assert rel.stats.get("credits_consumed") == \
            rel.stats.get("credits_replenished")
    summary = rt.fault_summary()
    assert summary.get("credits_consumed", 0) > 0
    assert summary.get("slow_deferrals", 0) > 0


@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi_i"])
def test_backlog_and_in_flight_stay_bounded(config):
    plan = FaultPlan.parse(OVERLOAD)
    flow = FlowControlPolicy(credit_window=3, max_backlog=5,
                             max_queued_parcels=16)
    seen = {"in_flight": 0, "backlog": 0}

    def sample(rt):
        for loc in rt.localities:
            rel = loc.parcelport.reliability
            if rel is not None:
                seen["in_flight"] = max(seen["in_flight"], rel.in_flight)
            for depth in loc.parcelport.backlog_depths().values():
                seen["backlog"] = max(seen["backlog"], depth)

    rt, got, shed = _run_flow(config, plan=plan, flow=flow, n=40,
                              concurrent=True, sampler=sample)
    assert sorted(got) == list(range(40))
    pp = rt.locality(0).parcelport
    assert pp.backlog_peak <= flow.max_backlog
    assert seen["backlog"] <= flow.max_backlog
    # every credited message holds a credit, so in-flight can never pass
    # the per-peer window (single destination here)
    assert seen["in_flight"] <= flow.credit_window
    assert rt.fault_summary().get("backlogged_sends", 0) > 0


# ---------------------------------------------------------------------------
# pool squeeze: backoff + eager->rendezvous fallback
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "lci_sr_sy_mt"])
def test_pool_squeeze_triggers_backoff_and_fallback(config):
    # cap=1: headers get their packet, but eager chunks find the pool dry
    # while the header drains through TX -> rendezvous fallback
    plan = FaultPlan.parse("squeeze=0:5000@0*1")
    flow = FlowControlPolicy(credit_window=8, rendezvous_fallback_after=1)
    rt, got, shed = _run_flow(config, plan=plan, flow=flow, n=20,
                              size=8192, concurrent=True)
    assert sorted(got) == list(range(20))
    assert shed == []
    summary = rt.fault_summary()
    assert summary.get("pool_squeezed", 0) > 0
    assert summary.get("pool_exhaustions", 0) > 0
    assert summary.get("eager_fallbacks", 0) > 0


def test_full_squeeze_recovers_after_window():
    # cap=0: *nothing* can take a packet during the window; the
    # exponential backoff must carry every send across it
    plan = FaultPlan.parse("squeeze=0:2000@0*0")
    flow = FlowControlPolicy(credit_window=8)
    rt, got, shed = _run_flow("lci_psr_cq_pin_i", plan=plan, flow=flow, n=30)
    assert sorted(got) == list(range(30))
    summary = rt.fault_summary()
    assert summary.get("pool_retries", 0) > 0
    assert summary.get("pool_backoffs", 0) > 0


# ---------------------------------------------------------------------------
# credit starvation: held acks must not duplicate deliveries
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi_i"])
def test_exactly_once_under_credit_starvation(config):
    # acks destined to the sender (node 0) are held: its credit window
    # drains to zero and stays there until the window lifts
    plan = FaultPlan.parse("starve=0:1200@0")
    flow = FlowControlPolicy(credit_window=2, max_backlog=8,
                             max_queued_parcels=16)
    rt, got, shed = _run_flow(config, plan=plan, flow=flow, n=30)
    assert sorted(got) == list(range(30))
    assert len(set(got)) == len(got), "duplicate execution"
    summary = rt.fault_summary()
    assert summary.get("ack_holds", 0) > 0
    assert summary.get("credit_stalls", 0) > 0


# ---------------------------------------------------------------------------
# shed overflow policy
# ---------------------------------------------------------------------------
def test_shed_policy_drops_loudly_and_bounds_the_sample():
    plan = FaultPlan.parse("slow=0:4000@1*5")
    flow = FlowControlPolicy(credit_window=1, max_backlog=1,
                             overflow=OVERFLOW_SHED, shed_sample=4)
    rt, got, shed = _run_flow("lci_psr_cq_pin_i", plan=plan, flow=flow,
                              n=40, concurrent=True)
    # conservation: every parcel either executed once or was shed loudly
    delivered = sorted(got)
    shed_ids = sorted(i for i, _ in shed)
    assert sorted(delivered + shed_ids) == list(range(40))
    assert len(shed_ids) > 0
    assert all(isinstance(exc, ParcelShedError) for _, exc in shed)
    pl = rt.locality(0).parcel_layer
    assert pl.stats.get("parcels_shed") == len(shed_ids)
    assert len(pl.shed_parcels) <= flow.shed_sample


# ---------------------------------------------------------------------------
# determinism + byte-identity contracts
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi_i"])
def test_overloaded_runs_are_deterministic(config):
    def once():
        rt, got, shed = _run_flow(config,
                                  plan=FaultPlan.parse(OVERLOAD),
                                  flow=FlowControlPolicy(
                                      credit_window=3, max_backlog=6,
                                      max_queued_parcels=12),
                                  n=30, seed=99)
        return (rt.sim.now, tuple(got),
                tuple(sorted(rt.fault_summary().items())))

    assert once() == once()


@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi"])
def test_flow_enabled_unloaded_run_is_byte_identical(config):
    """An armed-but-never-triggered policy must not change the timeline."""
    from repro.bench.latency import LatencyParams, run_latency
    from repro.bench.message_rate import MessageRateParams, run_message_rate

    params = MessageRateParams(msg_size=8, batch=50, total_msgs=1000,
                               inject_rate_kps=200.0, platform=LAPTOP)
    base = run_message_rate(config, params, seed=5)
    flowed = run_message_rate(config, params, seed=5,
                              flow_policy=FlowControlPolicy())
    assert flowed.inject_time_us == base.inject_time_us
    assert flowed.comm_time_us == base.comm_time_us
    # no flow machinery ever engaged
    assert not any(k in flowed.faults for k in
                   ("credit_stalls", "backlogged_sends", "puts_deferred",
                    "parcels_shed", "pool_backoffs"))

    lp = LatencyParams(msg_size=8, window=4, steps=10, platform=LAPTOP)
    lbase = run_latency(config, lp, seed=5)
    lflow = run_latency(config, lp, seed=5, flow_policy=FlowControlPolicy())
    assert lflow.total_time_us == lbase.total_time_us


# ---------------------------------------------------------------------------
# parcelport submit statuses + gauges
# ---------------------------------------------------------------------------
def test_submit_without_policy_is_plain_send():
    rt = make_runtime("mpi_i", platform=LAPTOP, n_localities=2)
    rt.boot()
    pp = rt.locality(0).parcelport
    assert pp.flow is None
    assert pp.can_accept(1)
    assert pp.backlog_depths() == {}


def test_flow_summary_reports_gauges():
    plan = FaultPlan.parse(OVERLOAD)
    flow = FlowControlPolicy(credit_window=4, max_backlog=8,
                             max_queued_parcels=16)
    rt, got, _ = _run_flow("lci_psr_cq_pin_i", plan=plan, flow=flow, n=20)
    fsum = rt.flow_summary()
    assert set(fsum) == {"L0", "L1"}
    assert fsum["L0"]["in_flight"] == 0
    assert fsum["L0"]["credits"][1] == flow.credit_window
    assert fsum["L0"]["backlog_peak"] >= 0
    # without a policy the summary is empty
    rt2 = make_runtime("mpi_i", platform=LAPTOP, n_localities=2)
    rt2.boot()
    assert rt2.flow_summary() == {}


def test_statuses_are_distinct():
    assert SEND_OK != SEND_WOULD_BLOCK


# ---------------------------------------------------------------------------
# the overload_smoke figure
# ---------------------------------------------------------------------------
def test_overload_smoke_reports_nonzero_overload_counters():
    from repro.bench.figures import OVERLOAD_CONFIGS, overload_smoke

    res = overload_smoke(quick=True)
    assert [s.label for s in res.series] == OVERLOAD_CONFIGS
    for s in res.series:
        assert s.xs == [0.0, 1.0]
        assert all(y > 0 for y in s.ys), s.label
    counters = res.meta["counters"]
    assert len(counters) == len(OVERLOAD_CONFIGS)
    for key, c in counters.items():
        assert c.get("failed_msgs", 0) == 0, key
        assert c.get("fault.credits_consumed", 0) > 0, key
        assert c.get("fault.slow_deferrals", 0) > 0, key
    # the squeezed LCI family must have felt the pool squeeze
    lci = counters["lci_psr_cq_pin_i@" + res.meta["spec"]]
    assert lci.get("fault.pool_squeezed", 0) > 0
