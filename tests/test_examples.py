"""Smoke tests: every example script runs to completion."""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=240):
    path = os.path.join(EXAMPLES, name)
    proc = subprocess.run([sys.executable, path, *args],
                          capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "OK" in out
    assert "virtual microseconds" in out


def test_message_rate_study_small():
    out = run_example("message_rate_study.py", "--total", "400")
    assert "best configuration" in out
    assert "lci" in out


def test_latency_study_small():
    out = run_example("latency_study.py", "--steps", "5")
    assert "mpi_i / lci latency ratio" in out


def test_octotiger_scaling_small():
    out = run_example("octotiger_scaling.py", "--platform", "rostam",
                      "--nodes", "2", "--steps", "1")
    assert "lci/mpi" in out


def test_custom_parcelport_config():
    out = run_example("custom_parcelport_config.py")
    assert "eager threshold" in out
    assert "rendezvous" in out


def test_profiling_study_small():
    out = run_example("profiling_study.py", "--nodes", "2")
    assert "MPI progress-lock wait" in out
    assert "LCI try-lock contention" in out


def test_design_space_sweep_small(tmp_path):
    out = run_example("design_space_sweep.py", "--total", "500",
                      "--out", str(tmp_path / "s.json"))
    assert "device replication" in out
    assert "saved + reloaded" in out


def test_graph_bfs_example():
    out = run_example("graph_bfs.py", "--vertices", "300")
    assert "matches the sequential reference" in out
    assert "MTEPS" in out
