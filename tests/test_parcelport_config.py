"""Unit tests for Table-1 configuration parsing and labels."""

import pytest

from repro.parcelport import ALL_LCI_VARIANTS, PPConfig, TABLE1


def test_parse_baseline_lci():
    c = PPConfig.parse("lci")
    assert c.backend == "lci"
    assert c.protocol == "psr"
    assert c.completion == "cq"
    assert c.progress == "pin"
    assert not c.immediate
    assert c.label == "lci_psr_cq_pin"


def test_parse_full_variant():
    c = PPConfig.parse("lci_sr_sy_mt_i")
    assert (c.protocol, c.completion, c.progress, c.immediate) == \
        ("sr", "sy", "worker", True)
    assert c.label == "lci_sr_sy_mt_i"


def test_parse_rp_alias_for_pin():
    assert PPConfig.parse("lci_psr_cq_rp_i") == PPConfig.parse(
        "lci_psr_cq_pin_i")


def test_parse_worker_alias_for_mt():
    assert PPConfig.parse("lci_psr_cq_worker") == PPConfig.parse(
        "lci_psr_cq_mt")


def test_parse_mpi_variants():
    assert PPConfig.parse("mpi").label == "mpi"
    assert PPConfig.parse("mpi_i").immediate
    orig = PPConfig.parse("mpi_orig")
    assert orig.mpi_variant == "original"
    assert orig.label == "mpi_orig"


def test_label_roundtrip_for_all_variants():
    for spec in ALL_LCI_VARIANTS + ["mpi", "mpi_i", "mpi_orig",
                                    "lci_psr_cq_pin"]:
        assert PPConfig.parse(spec).label == spec


def test_parse_rejects_unknown_tokens():
    with pytest.raises(ValueError):
        PPConfig.parse("lci_bogus")
    with pytest.raises(ValueError):
        PPConfig.parse("ucx")
    with pytest.raises(ValueError):
        PPConfig.parse("")


def test_parse_tcp_backend():
    assert PPConfig.parse("tcp").label == "tcp"
    assert PPConfig.parse("tcp_i").immediate
    with pytest.raises(ValueError):
        PPConfig.parse("tcp_psr")
    with pytest.raises(ValueError):
        PPConfig.parse("tcp_orig")


def test_parse_rejects_lci_tokens_on_mpi():
    with pytest.raises(ValueError):
        PPConfig.parse("mpi_psr")
    with pytest.raises(ValueError):
        PPConfig.parse("mpi_cq_i")


def test_invalid_field_values_rejected():
    with pytest.raises(ValueError):
        PPConfig(backend="ucx")
    with pytest.raises(ValueError):
        PPConfig(protocol="put")
    with pytest.raises(ValueError):
        PPConfig(completion="handler")
    with pytest.raises(ValueError):
        PPConfig(progress="both")


def test_all_lci_variants_enumeration():
    assert len(ALL_LCI_VARIANTS) == 8
    assert len(set(ALL_LCI_VARIANTS)) == 8
    for v in ALL_LCI_VARIANTS:
        assert v.endswith("_i")


def test_table1_contents_match_paper():
    assert TABLE1["psr"] == "Use the putsendrecv protocol"
    assert TABLE1["cq"] == "Use completion queue as the completion type"
    assert TABLE1["pin"] == "Use a pinned dedicated progress thread"
    assert TABLE1["mt"] == "Use all worker threads to make progress"
    assert TABLE1["i"] == "Enable the send immediate optimization"
    assert set(TABLE1) == {"tcp", "mpi", "lci", "sr", "psr", "sy", "cq",
                           "pin", "mt", "i"}


def test_with_override():
    c = PPConfig.parse("lci_psr_cq_pin")
    c2 = c.with_(immediate=True)
    assert c2.label == "lci_psr_cq_pin_i"
    assert not c.immediate


# ----------------------------------------------------------------------
# backend-field normalization + canonical_name round-trips


def test_tcp_normalizes_lci_only_fields():
    # LCI-only fields on a non-LCI backend collapse to their defaults,
    # so behaviorally-identical configs compare and hash identically.
    assert PPConfig(backend="tcp", protocol="sr") == PPConfig(backend="tcp")
    assert PPConfig(backend="tcp", completion="sy",
                    progress="worker") == PPConfig(backend="tcp")
    assert hash(PPConfig(backend="tcp", protocol="sr")) == \
        hash(PPConfig(backend="tcp"))


def test_mpi_normalizes_lci_only_fields():
    assert PPConfig(backend="mpi", protocol="sr",
                    progress="worker") == PPConfig(backend="mpi")
    # and the mpi_variant field is LCI/tcp-inert the other way round
    assert PPConfig(backend="lci", mpi_variant="original") == \
        PPConfig(backend="lci")
    assert PPConfig(backend="tcp", mpi_variant="original") == \
        PPConfig(backend="tcp")


def test_normalized_label_parse_roundtrip():
    # The historical lossy case: a non-LCI config carrying non-default
    # LCI fields used to produce a label that parsed back to a
    # *different* config.  Normalization closes the loop.
    c = PPConfig(backend="tcp", protocol="sr", completion="sy",
                 progress="worker", immediate=True)
    assert PPConfig.parse(c.label) == c


def test_canonical_name_roundtrip_all_families():
    specs = ALL_LCI_VARIANTS + [
        "lci_psr_cq_pin", "lci_sr_cq_pin", "lci_psr_sy_mt",
        "mpi", "mpi_i", "mpi_orig", "mpi_orig_i", "tcp", "tcp_i",
    ]
    for spec in specs:
        c = PPConfig.parse(spec)
        assert c.canonical_name == spec
        assert PPConfig.parse(c.canonical_name) == c


def test_canonical_name_roundtrip_constructed():
    # Every constructible config round-trips through its canonical name.
    for backend in ("lci", "mpi", "tcp"):
        for immediate in (False, True):
            c = PPConfig(backend=backend, immediate=immediate)
            assert PPConfig.parse(c.canonical_name) == c
