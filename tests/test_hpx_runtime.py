"""Tests for the HPX-like runtime: scheduler, futures, actions, parcel layer."""

import pytest

from repro import LAPTOP, make_runtime
from repro.hpx_rt import EXPANSE, Future, Latch, ROSTAM, platform_by_name
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# futures / latches
# ---------------------------------------------------------------------------
def test_future_set_and_wait():
    sim = Simulator()
    fut = Future(sim)
    got = []

    def waiter(sim):
        got.append((yield fut.wait()))

    sim.process(waiter(sim))
    sim.schedule_call(2.0, lambda: fut.set_result("v"))
    sim.run()
    assert got == ["v"]
    assert fut.done and fut.value == "v"


def test_future_wait_after_done_is_immediate():
    sim = Simulator()
    fut = Future(sim)
    fut.set_result(7)
    assert fut.wait().triggered


def test_future_double_set_raises():
    sim = Simulator()
    fut = Future(sim)
    fut.set_result(1)
    with pytest.raises(RuntimeError):
        fut.set_result(2)


def test_future_value_before_done_raises():
    sim = Simulator()
    fut = Future(sim)
    with pytest.raises(RuntimeError):
        _ = fut.value


def test_future_fanout_to_multiple_waiters():
    sim = Simulator()
    fut = Future(sim)
    got = []

    def waiter(sim, tag):
        got.append((tag, (yield fut.wait())))

    sim.process(waiter(sim, "a"))
    sim.process(waiter(sim, "b"))
    sim.schedule_call(1.0, lambda: fut.set_result("x"))
    sim.run()
    assert sorted(got) == [("a", "x"), ("b", "x")]


def test_latch_counts_down():
    sim = Simulator()
    latch = Latch(sim, 3)
    assert not latch.open
    latch.count_down()
    latch.count_down(2)
    assert latch.open
    assert latch.wait().triggered


def test_latch_zero_opens_immediately():
    sim = Simulator()
    assert Latch(sim, 0).open


def test_latch_overshoot_raises():
    sim = Simulator()
    latch = Latch(sim, 1)
    latch.count_down()
    with pytest.raises(RuntimeError):
        latch.count_down()


# ---------------------------------------------------------------------------
# runtime basics
# ---------------------------------------------------------------------------
def test_platform_lookup():
    assert platform_by_name("expanse") is EXPANSE
    assert platform_by_name("rostam") is ROSTAM
    with pytest.raises(KeyError):
        platform_by_name("summit")


def test_platform_thread_weight():
    assert EXPANSE.thread_weight == 8.0
    assert ROSTAM.thread_weight == 4.0
    assert EXPANSE.sim_cores_per_node * EXPANSE.thread_weight == 128


def test_runtime_rejects_excess_localities():
    with pytest.raises(ValueError, match="at most"):
        make_runtime("lci", platform=LAPTOP, n_localities=100)


def test_duplicate_action_registration_rejected():
    rt = make_runtime("lci", platform=LAPTOP)
    rt.register_action("a", lambda w: None)
    with pytest.raises(ValueError):
        rt.register_action("a", lambda w: None)


def test_unregistered_action_apply_raises():
    rt = make_runtime("lci", platform=LAPTOP)
    rt.boot()

    def task(worker):
        yield from rt.locality(0).apply(worker, 1, "missing", ())

    rt.locality(0).spawn(task)
    with pytest.raises(KeyError, match="missing"):
        rt.run_until(rt.sim.now + 1000.0)


def test_double_boot_rejected():
    rt = make_runtime("lci", platform=LAPTOP)
    rt.boot()
    with pytest.raises(RuntimeError):
        rt.boot()


def test_local_action_short_circuits_network():
    rt = make_runtime("lci", platform=LAPTOP, n_localities=2)
    done = rt.new_future()

    def handler(worker, v):
        done.set_result(v)
        return None

    rt.register_action("local", handler)

    def task(worker):
        yield from rt.locality(0).apply(worker, 0, "local", (42,))

    rt.boot()
    rt.locality(0).spawn(task)
    assert rt.run_until(done) == 42
    assert rt.fabric.stats.counters.get("msgs", 0) == 0  # nothing on wire


def test_action_decorator_form():
    rt = make_runtime("lci", platform=LAPTOP)
    done = rt.new_future()

    @rt.action("decorated")
    def handler(worker, v):
        done.set_result(v + 1)
        return None

    def task(worker):
        yield from rt.locality(0).apply(worker, 1, "decorated", (1,))

    rt.boot()
    rt.locality(0).spawn(task)
    assert rt.run_until(done) == 2


def test_remote_action_roundtrip_with_reply():
    rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP, n_localities=2)
    done = rt.new_future()

    def echo(worker, v):
        yield from worker.locality.apply(worker, 0, "reply", (v * 2,))

    def reply(worker, v):
        done.set_result(v)
        return None

    rt.register_action("echo", echo)
    rt.register_action("reply", reply)

    def task(worker):
        yield from rt.locality(0).apply(worker, 1, "echo", (21,))

    rt.boot()
    rt.locality(0).spawn(task)
    assert rt.run_until(done, max_events=100000) == 42


def test_worker_compute_scaled_by_thread_weight():
    rt = make_runtime("lci", platform=EXPANSE, n_localities=2)
    rt.boot()
    w = rt.localities[0].workers[0]
    # cpu/compute return the bare charge (the kernel's float fast path
    # schedules it exactly like a timeout of the same delay)
    assert w.compute(800.0) == pytest.approx(800.0 / 8.0)
    assert w.cpu(5.0) == 5.0


def test_aggregate_stats_merge():
    rt = make_runtime("lci", platform=LAPTOP, n_localities=2)
    done = rt.new_latch(5)

    def sink(worker, i):
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def task(worker):
        for i in range(5):
            yield from rt.locality(0).apply(worker, 1, "sink", (i,))

    rt.boot()
    rt.locality(0).spawn(task)
    rt.run_until(done, max_events=100000)
    stats = rt.aggregate_stats()
    assert stats.counters["parcels_created"] == 5
    assert stats.counters["parcels_executed"] == 5


# ---------------------------------------------------------------------------
# parcel layer: aggregation vs immediate
# ---------------------------------------------------------------------------
def _run_batch(config, n=40):
    rt = make_runtime(config, platform=LAPTOP, n_localities=2)
    done = rt.new_latch(n)

    def sink(worker, i):
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def burst(worker):
        for i in range(n):
            yield from rt.locality(0).apply(worker, 1, "sink", (i,))

    rt.boot()
    # several concurrent producer tasks -> aggregation opportunity
    for _ in range(4):
        rt.locality(0).spawn(burst)
    rt.run_until(rt.new_latch(0).wait() if False else done,
                 max_events=2_000_000)
    return rt


def test_default_mode_aggregates_parcels():
    rt = _run_batch("lci_psr_cq_pin", n=40)
    layer = rt.localities[0].parcel_layer
    assert layer.stats.counters["parcels_sent"] == 160
    # queue + bounded connections must have batched at least some sends
    assert layer.stats.counters["messages_sent"] < 160
    assert layer.aggregation_ratio() > 1.0


def test_immediate_mode_never_aggregates():
    rt = _run_batch("lci_psr_cq_pin_i", n=40)
    layer = rt.localities[0].parcel_layer
    assert layer.stats.counters["messages_sent"] == 160
    assert layer.aggregation_ratio() == 1.0


def test_aggregation_preserves_parcel_multiset():
    rt = make_runtime("mpi", platform=LAPTOP, n_localities=2)
    seen = []
    done = rt.new_latch(30)

    def sink(worker, i):
        seen.append(i)
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def burst(worker, base):
        for i in range(10):
            yield from rt.locality(0).apply(worker, 1, "sink", (base + i,))

    rt.boot()
    for b in (0, 100, 200):
        rt.locality(0).spawn(lambda w, b=b: burst(w, b))
    rt.run_until(done, max_events=2_000_000)
    assert sorted(seen) == sorted(list(range(0, 10))
                                  + list(range(100, 110))
                                  + list(range(200, 210)))


def test_custom_fabric_factory():
    """Experiments can swap the crossbar for an oversubscribed fat tree."""
    from functools import partial
    from repro.netsim import FatTreeFabric
    from repro.parcelport import make_parcelport_factory

    from repro.hpx_rt import HpxRuntime

    def build(oversub):
        factory = partial(FatTreeFabric, nodes_per_switch=2,
                          oversubscription=oversub)
        rt = HpxRuntime(LAPTOP, 4,
                        make_parcelport_factory("lci_psr_cq_pin_i"),
                        immediate=True, fabric_factory=factory)
        done = rt.new_latch(12)

        def sink(worker, i, blob):
            done.count_down()
            return None

        rt.register_action("sink", sink)

        def sender(worker):
            for i in range(12):
                # node 0 (switch 0) -> node 3 (switch 1): crosses uplinks
                yield from rt.locality(0).apply(worker, 3, "sink",
                                                (i, "x"),
                                                arg_sizes=[8, 60000])

        rt.boot()
        rt.locality(0).spawn(sender)
        rt.run_until(done, max_events=2_000_000)
        return rt

    fast = build(1.0)
    slow = build(32.0)
    assert isinstance(fast.fabric, FatTreeFabric)
    assert fast.fabric.stats.counters["cross_switch_msgs"] > 0
    # heavier oversubscription -> slower end-to-end completion
    assert slow.now > fast.now
