"""Unit tests for the simulated MPI library."""

import pytest

from repro.mpi_sim import (ANY_SOURCE, ANY_TAG, DEFAULT_MPI_PARAMS, MAX_TAG,
                           MpiComm, MpiParams, Request)
from repro.netsim import Fabric, NetMsg, TESTNET
from repro.sim import Simulator


class FakeWorker:
    """Minimal worker context for driving library generators in tests."""

    def __init__(self, sim):
        self.sim = sim

    def cpu(self, us):
        return self.sim.timeout(us)

    def lock(self, lk):
        yield lk.acquire()

    def lock_acquired(self, lk, t0):
        pass


def make_pair(params=DEFAULT_MPI_PARAMS):
    sim = Simulator()
    fabric = Fabric(sim, TESTNET)
    a = MpiComm(sim, fabric.add_node(0), rank=0, params=params)
    b = MpiComm(sim, fabric.add_node(1), rank=1, params=params)
    return sim, FakeWorker(sim), a, b


def drive(sim, gen, name=""):
    return sim.process(gen, name)


def test_eager_send_completes_locally():
    sim, w, a, b = make_pair()

    def sender():
        req = yield from a.isend(w, 1, 64, tag=5, payload="hi")
        assert req.done  # eager: buffered at post time
        return req

    p = drive(sim, sender())
    sim.run()
    assert p.value.done


def test_eager_message_matches_posted_recv():
    sim, w, a, b = make_pair()
    out = {}

    def receiver():
        req = yield from b.irecv(w, 0, 64, tag=5)
        out["req"] = req

    def sender():
        yield sim.timeout(1.0)
        yield from a.isend(w, 1, 64, tag=5, payload="hello")

    def poller():
        yield sim.timeout(10.0)
        done = yield from b.test(w, out["req"])
        out["done"] = done

    drive(sim, receiver())
    drive(sim, sender())
    drive(sim, poller())
    sim.run()
    assert out["done"]
    assert out["req"].value == "hello"


def test_unexpected_message_matched_by_later_irecv():
    sim, w, a, b = make_pair()
    out = {}

    def sender():
        yield from a.isend(w, 1, 64, tag=9, payload="early")

    def receiver():
        yield sim.timeout(20.0)
        # Drain the RX ring into the unexpected queue first.
        dummy = Request("recv", 0, 1, tag=12345)
        b.posted.append(dummy)
        yield from b.test(w, dummy)
        assert b.unexpected_count == 1
        req = yield from b.irecv(w, 0, 64, tag=9)
        out["req"] = req

    drive(sim, sender())
    drive(sim, receiver())
    sim.run()
    assert out["req"].done
    assert out["req"].value == "early"
    assert b.unexpected_count == 0


def test_wildcard_source_and_tag_matching():
    req = Request("recv", ANY_SOURCE, 10, ANY_TAG)
    assert req.matches(3, 7)
    req2 = Request("recv", 2, 10, 7)
    assert req2.matches(2, 7)
    assert not req2.matches(3, 7)
    assert not req2.matches(2, 8)
    send = Request("send", 2, 10, 7)
    assert not send.matches(2, 7)


def test_rendezvous_roundtrip():
    params = DEFAULT_MPI_PARAMS.with_(eager_threshold=100)
    sim, w, a, b = make_pair(params)
    out = {}

    def receiver():
        req = yield from b.irecv(w, 0, 5000, tag=3)
        out["rreq"] = req
        while not req.done:
            yield sim.timeout(1.0)
            yield from b.test(w, req)

    def sender():
        req = yield from a.isend(w, 1, 5000, tag=3, payload="big")
        assert not req.done  # rendezvous: not complete at post
        out["sreq"] = req
        while not req.done:
            yield sim.timeout(1.0)
            yield from a.test(w, req)

    drive(sim, receiver())
    drive(sim, sender())
    sim.run(max_events=100000)
    assert out["rreq"].done
    assert out["rreq"].value == "big"
    assert out["sreq"].done


def test_rendezvous_data_is_fragmented():
    params = DEFAULT_MPI_PARAMS.with_(eager_threshold=100,
                                      rndv_frag_bytes=1024)
    sim, w, a, b = make_pair(params)

    def receiver():
        req = yield from b.irecv(w, 0, 4096, tag=3)
        while not req.done:
            yield sim.timeout(1.0)
            yield from b.test(w, req)

    def sender():
        req = yield from a.isend(w, 1, 4096, tag=3, payload="x")
        while not req.done:
            yield sim.timeout(1.0)
            yield from a.test(w, req)

    drive(sim, receiver())
    drive(sim, sender())
    sim.run(max_events=100000)
    assert b.stats.counters["rndv_frags"] == 4
    assert b.stats.counters["rndv_recvs"] == 1


def test_posted_list_scan_costs_grow_with_length():
    """Matching is a linear scan — the paper's MPI meltdown mechanism."""
    sim, w, a, b = make_pair()
    # Post 50 receives with distinct tags, then match the last one.
    def receiver():
        for tag in range(2, 52):
            yield from b.irecv(w, 0, 8, tag=tag)

    drive(sim, receiver())
    sim.run()
    req, scanned = b._match_posted(0, 51)
    assert req is not None
    assert scanned == 50  # had to walk the whole list


def test_progress_idle_fast_path():
    sim, w, a, b = make_pair()

    def poller():
        dummy = Request("recv", 0, 1, tag=1)
        b.posted.append(dummy)
        yield from b.test(w, dummy)

    drive(sim, poller())
    sim.run()
    # idle progress charges a fraction of base cost; just verify it ran
    assert b.stats.counters["progress_calls"] == 1


def test_progress_lock_serializes_concurrent_tests():
    sim, w, a, b = make_pair()
    order = []

    def poller(tag):
        dummy = Request("recv", 0, 1, tag=tag)
        b.posted.append(dummy)
        yield from b.test(FakeWorker(sim), dummy)
        order.append((tag, sim.now))

    drive(sim, poller(100))
    drive(sim, poller(101))
    sim.run()
    # second test must finish strictly after the first released the lock
    assert order[0][1] < order[1][1]


def test_notify_hook_called_on_completion():
    sim, w, a, b = make_pair()
    hits = []
    a.notify = lambda: hits.append(sim.now)

    def sender():
        yield from a.isend(w, 1, 8, tag=2, payload=None)

    drive(sim, sender())
    sim.run()
    assert len(hits) == 1  # eager send completion fires notify


def test_max_tag_bound():
    assert MAX_TAG == 32767
