"""Fault-injection layer: plan DSL, injector primitives, retry/recovery.

Everything here runs under the ``faults`` marker (``pytest -m faults``)
so CI can smoke the fault paths separately from the tier-1 suite.
"""

import pytest

from repro import FaultPlan, LAPTOP, RetryPolicy, make_runtime
from repro.faults import (CORRUPT, DELIVER, DROP, FaultInjector, LinkFlap,
                          NicStall)
from repro.netsim.message import NetMsg
from repro.parcelport.reliability import ACK_TAG, ReliabilityLayer
from repro.sim.core import Simulator
from repro.sim.rng import RngPool

pytestmark = pytest.mark.faults

CONFIGS = ["lci_psr_cq_pin_i", "lci_sr_sy_mt", "mpi", "mpi_i", "mpi_orig"]


# ---------------------------------------------------------------------------
# FaultPlan: validation + DSL
# ---------------------------------------------------------------------------
def test_plan_defaults_are_zero():
    plan = FaultPlan()
    assert plan.is_zero
    assert plan.describe() == "none"


def test_plan_validation_rejects_bad_probs():
    with pytest.raises(ValueError):
        FaultPlan(drop_prob=1.5)
    with pytest.raises(ValueError):
        FaultPlan(corrupt_prob=-0.1)
    with pytest.raises(ValueError):
        FaultPlan(drop_prob=0.7, corrupt_prob=0.7)
    with pytest.raises(ValueError):
        LinkFlap(100.0, 100.0)
    with pytest.raises(ValueError):
        NicStall(0, 50.0, 10.0)


def test_dsl_parses_every_token_kind():
    plan = FaultPlan.parse(
        "drop=0.05, corrupt=0.01, flap=100:200, flap=500:900@0>1, "
        "stall=50:80@1, target=0>*, target=*>1")
    assert plan.drop_prob == 0.05
    assert plan.corrupt_prob == 0.01
    assert plan.flaps == (LinkFlap(100.0, 200.0),
                          LinkFlap(500.0, 900.0, src=0, dst=1))
    assert plan.stalls == (NicStall(1, 50.0, 80.0),)
    assert plan.targets == ((0, None), (None, 1))
    assert not plan.is_zero
    # describe() round-trips through parse()
    assert FaultPlan.parse(plan.describe()) == plan


@pytest.mark.parametrize("bad", [
    "drop", "flap=100", "flap=1:2@3", "stall=1:2", "target=01",
    "bogus=1", "drop=2.0",
])
def test_dsl_rejects_malformed_tokens(bad):
    with pytest.raises(ValueError):
        FaultPlan.parse(bad)


# ---------------------------------------------------------------------------
# FaultInjector primitives
# ---------------------------------------------------------------------------
def _msg(src=0, dst=1, kind="eager"):
    return NetMsg(src=src, dst=dst, size=64, kind=kind)


def _injector(plan, seed=1):
    sim = Simulator()
    return sim, FaultInjector(sim, plan, RngPool(seed).stream("faults"))


def test_flap_window_drops_only_inside_window():
    sim, inj = _injector(FaultPlan(flaps=(LinkFlap(10.0, 20.0),)))
    assert inj.on_transmit(_msg()) == DELIVER          # t=0, before window
    sim.schedule_call(15.0, lambda: None)
    sim.run()                                          # advance to t=15
    assert inj.on_transmit(_msg()) == DROP
    assert inj.stats.get("flap_drops") == 1
    sim.schedule_call(10.0, lambda: None)
    sim.run()                                          # t=25, after window
    assert inj.on_transmit(_msg()) == DELIVER


def test_flap_link_selector():
    sim, inj = _injector(FaultPlan(flaps=(LinkFlap(0.0, 10.0, src=0,
                                                   dst=1),)))
    assert inj.on_transmit(_msg(0, 1)) == DROP
    assert inj.on_transmit(_msg(1, 0)) == DELIVER
    assert inj.on_transmit(_msg(0, 2)) == DELIVER


def test_drop_and_corrupt_rates_roughly_match():
    _, inj = _injector(FaultPlan(drop_prob=0.3, corrupt_prob=0.2))
    verdicts = [inj.on_transmit(_msg()) for _ in range(4000)]
    drops = verdicts.count(DROP) / len(verdicts)
    corrupts = verdicts.count(CORRUPT) / len(verdicts)
    assert abs(drops - 0.3) < 0.05
    assert abs(corrupts - 0.2) < 0.05
    assert inj.stats.get("drops") == verdicts.count(DROP)
    assert inj.stats.get("corrupt.eager") == verdicts.count(CORRUPT)


def test_targets_restrict_random_faults():
    _, inj = _injector(FaultPlan(drop_prob=1.0, targets=((0, 1),)))
    assert inj.on_transmit(_msg(0, 1)) == DROP
    assert inj.on_transmit(_msg(1, 0)) == DELIVER
    assert inj.on_transmit(_msg(2, 1)) == DELIVER
    _, inj = _injector(FaultPlan(drop_prob=1.0, targets=((None, 1),)))
    assert inj.on_transmit(_msg(2, 1)) == DROP


def test_stalled_until_picks_latest_covering_window():
    sim, inj = _injector(FaultPlan(stalls=(NicStall(1, 0.0, 10.0),
                                           NicStall(1, 5.0, 30.0))))
    assert inj.stalled_until(1, 6.0) == 30.0   # both cover; latest wins
    assert inj.stalled_until(1, 2.0) == 10.0   # only the first covers
    assert inj.stalled_until(0, 6.0) == 6.0    # other node unaffected
    assert inj.stalled_until(1, 40.0) == 40.0  # after all windows


# ---------------------------------------------------------------------------
# RetryPolicy / backoff
# ---------------------------------------------------------------------------
def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(timeout_us=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)


def test_backoff_exponential_with_bounded_jitter():
    sim = Simulator()
    pol = RetryPolicy(timeout_us=100.0, backoff=2.0, jitter=0.1)
    rel = ReliabilityLayer(sim, pol, RngPool(3).stream("retry"))
    for k in range(5):
        base = 100.0 * 2.0 ** k
        for _ in range(20):
            d = rel.next_deadline(k)
            assert base <= d <= base * 1.1


def test_ack_tag_below_dynamic_range():
    from repro.parcelport.tagging import FIRST_DYNAMIC_TAG
    assert ACK_TAG < FIRST_DYNAMIC_TAG


# ---------------------------------------------------------------------------
# end-to-end: lossy runs still deliver exactly once (or fail loudly)
# ---------------------------------------------------------------------------
def _run_lossy(config, plan, policy=None, n=40, seed=11, size=8,
               latch_count=None):
    rt = make_runtime(config, platform=LAPTOP, n_localities=2, seed=seed,
                      fault_plan=plan, retry_policy=policy)
    got, failed = [], []
    done = rt.new_latch(latch_count if latch_count is not None else n)

    def on_fail(parcel, exc):
        failed.append(parcel.args[0])
        done.count_down()

    rt.on_parcel_failure = on_fail

    def sink(worker, idx):
        got.append(idx)
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def sender(worker):
        for i in range(n):
            yield from rt.locality(0).apply(worker, 1, "sink", (i,),
                                            arg_sizes=[size])

    rt.boot()
    rt.locality(0).spawn(sender)
    rt.run_until(done, max_events=8_000_000)
    return rt, got, failed


@pytest.mark.parametrize("config", CONFIGS)
def test_lossy_run_delivers_exactly_once(config):
    plan = FaultPlan(drop_prob=0.08, corrupt_prob=0.02)
    rt, got, failed = _run_lossy(config, plan)
    # conservation: every parcel either executed once or failed loudly
    assert sorted(got + failed) == list(range(40))
    assert len(set(got)) == len(got), "duplicate action execution"
    summary = rt.fault_summary()
    assert summary.get("drops", 0) + summary.get("corrupts", 0) > 0
    assert summary.get("tracked_sends", 0) > 0


@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi_i"])
def test_bounded_retries_fail_without_hang(config):
    plan = FaultPlan(drop_prob=1.0, targets=((0, 1),))
    pol = RetryPolicy(timeout_us=100.0, max_retries=2)
    rt, got, failed = _run_lossy(config, plan, policy=pol, n=10)
    assert got == []
    assert sorted(failed) == list(range(10))
    summary = rt.fault_summary()
    assert summary["sends_failed"] == 10
    # each failure spent exactly max_retries retransmissions
    assert summary["retransmits"] == 20
    assert rt.locality(0).parcel_layer.stats.get("parcels_failed") == 10


@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi_i"])
def test_lost_acks_deduped_not_redelivered(config):
    # Kill the 1 -> 0 direction entirely: deliveries succeed but every
    # ack is lost, so the sender retransmits until retries exhaust.
    plan = FaultPlan(drop_prob=1.0, targets=((1, 0),))
    pol = RetryPolicy(timeout_us=150.0, max_retries=2)
    # each parcel counts down twice: once delivered, once reported failed
    rt, got, failed = _run_lossy(config, plan, policy=pol, n=10,
                                 latch_count=20)
    # every message was executed exactly once despite retransmissions...
    assert sorted(got) == list(range(10))
    # ...while the sender, never seeing an ack, reported them failed too
    assert sorted(failed) == list(range(10))
    summary = rt.fault_summary()
    assert summary.get("dup_deliveries", 0) > 0
    assert summary.get("acks_received", 0) == 0


@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi_i"])
def test_large_messages_survive_loss(config):
    plan = FaultPlan(drop_prob=0.05)
    rt, got, failed = _run_lossy(config, plan, n=12, size=30000)
    assert sorted(got + failed) == list(range(12))
    assert len(set(got)) == len(got)


def test_nic_stall_defers_but_delivers():
    plan = FaultPlan(stalls=(NicStall(1, 0.0, 400.0),))
    rt, got, failed = _run_lossy("lci_psr_cq_pin_i", plan, n=20)
    assert sorted(got) == list(range(20))
    assert failed == []
    assert rt.fault_summary().get("stall_deferrals", 0) > 0


def test_flap_window_recovers_after_window():
    plan = FaultPlan(flaps=(LinkFlap(0.0, 1500.0),))
    rt, got, failed = _run_lossy("mpi_i", plan, n=20)
    assert sorted(got + failed) == list(range(20))
    assert rt.fault_summary().get("flap_drops", 0) > 0


# ---------------------------------------------------------------------------
# the zero plan is a strict no-op
# ---------------------------------------------------------------------------
def test_zero_plan_builds_no_injector():
    rt = make_runtime("lci_psr_cq_pin_i", platform=LAPTOP, n_localities=2,
                      fault_plan=FaultPlan())
    assert rt.fault_injector is None
    assert rt.fabric.injector is None
    assert rt.reliable is False
    rt.boot()
    assert rt.locality(0).parcelport.reliability is None
    assert rt.fault_summary() == {}


@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi_i"])
def test_zero_plan_run_identical_to_no_plan(config):
    def run(plan):
        rt, got, failed = _run_lossy(config, plan, n=20, seed=5)
        assert failed == []
        return rt.sim.now, tuple(got)

    assert run(None) == run(FaultPlan())


def test_reliable_flag_without_faults_still_delivers():
    # The ack protocol alone (no losses) must not break anything.
    rt = make_runtime("mpi_i", platform=LAPTOP, n_localities=2,
                      reliable=True)
    got = []
    done = rt.new_latch(15)

    def sink(worker, idx):
        got.append(idx)
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def sender(worker):
        for i in range(15):
            yield from rt.locality(0).apply(worker, 1, "sink", (i,))

    rt.boot()
    assert rt.locality(0).parcelport.reliability is not None
    rt.locality(0).spawn(sender)
    rt.run_until(done, max_events=3_000_000)
    assert sorted(got) == list(range(15))
    pp = rt.locality(0).parcelport
    assert pp.stats.get("acks_received") > 0
    assert pp.stats.get("retransmits") == 0
    assert pp.stats.get("sends_failed") == 0
