"""Edge-path coverage: sy scanning, wildcard interplay, shutdown, params."""

import pytest

from repro import LAPTOP, make_runtime
from repro.lci_sim import DEFAULT_LCI_PARAMS, LciParams
from repro.mpi_sim import ANY_SOURCE, ANY_TAG, DEFAULT_MPI_PARAMS, MpiParams
from repro.netsim import Fabric, TESTNET
from repro.sim import Simulator
from repro.tcp_sim import DEFAULT_TCP_PARAMS


# ---------------------------------------------------------------------------
# parameter dataclasses
# ---------------------------------------------------------------------------
def test_param_with_overrides_are_copies():
    m = DEFAULT_MPI_PARAMS.with_(eager_threshold=42)
    assert m.eager_threshold == 42
    assert DEFAULT_MPI_PARAMS.eager_threshold != 42
    l = DEFAULT_LCI_PARAMS.with_(num_devices=3)
    assert l.num_devices == 3
    assert DEFAULT_LCI_PARAMS.num_devices == 1
    t = DEFAULT_TCP_PARAMS.with_(mss_bytes=100)
    assert t.mss_bytes == 100


def test_params_are_frozen():
    with pytest.raises(Exception):
        DEFAULT_MPI_PARAMS.eager_threshold = 1
    with pytest.raises(Exception):
        DEFAULT_LCI_PARAMS.num_devices = 2


def test_cost_model_helpers():
    from repro.hpx_rt import CostModel
    c = CostModel()
    assert c.serialize_cost(0) == c.serialize_base_us
    assert c.serialize_cost(1000) > c.serialize_cost(0)
    assert c.memcpy_cost(10000) == pytest.approx(
        10000 * c.memcpy_per_byte_us)
    c2 = c.with_(zero_copy_threshold=4096)
    assert c2.zero_copy_threshold == 4096
    assert c.zero_copy_threshold == 8192


# ---------------------------------------------------------------------------
# MPI wildcard interplay
# ---------------------------------------------------------------------------
class FakeWorker:
    def __init__(self, sim):
        self.sim = sim

    def cpu(self, us):
        return self.sim.timeout(us)

    def lock(self, lk):
        yield lk.acquire()

    def lock_acquired(self, lk, t0):
        pass


def test_wildcard_recv_does_not_steal_tagged_traffic():
    """An ANY_SOURCE/tag-0 header recv must not match tag-5 chunks."""
    from repro.mpi_sim import MpiComm
    sim = Simulator()
    fabric = Fabric(sim, TESTNET)
    a = MpiComm(sim, fabric.add_node(0), 0)
    b = MpiComm(sim, fabric.add_node(1), 1)
    w = FakeWorker(sim)
    out = {}

    def receiver():
        hdr = yield from b.irecv(w, ANY_SOURCE, 512, tag=0)
        tagged = yield from b.irecv(w, 0, 64, tag=5)
        out["hdr"], out["tagged"] = hdr, tagged

    def sender():
        yield sim.timeout(5.0)
        yield from a.isend(w, 1, 64, tag=5, payload="chunk")
        yield from a.isend(w, 1, 100, tag=0, payload="header")

    def poller():
        yield sim.timeout(50.0)
        for _ in range(10):
            yield from b.progress_only(w)
            yield sim.timeout(1.0)

    sim.process(receiver())
    sim.process(sender())
    sim.process(poller())
    sim.run(max_events=100000)
    assert out["tagged"].value == "chunk"
    assert out["hdr"].value == "header"


def test_any_tag_recv_matches_first_arrival():
    from repro.mpi_sim import MpiComm
    sim = Simulator()
    fabric = Fabric(sim, TESTNET)
    a = MpiComm(sim, fabric.add_node(0), 0)
    b = MpiComm(sim, fabric.add_node(1), 1)
    w = FakeWorker(sim)
    out = {}

    def run():
        req = yield from b.irecv(w, ANY_SOURCE, 64, ANY_TAG)
        yield from a.isend(w, 1, 64, tag=77, payload="x")
        yield sim.timeout(50.0)
        yield from b.test(w, req)
        out["req"] = req

    sim.process(run())
    sim.run(max_events=100000)
    assert out["req"].done and out["req"].value == "x"


# ---------------------------------------------------------------------------
# sy-mode pending-list behaviour
# ---------------------------------------------------------------------------
def test_sy_pending_list_drains_out_of_order_completions():
    """Synchronizers completing out of order still all get dispatched."""
    rt = make_runtime("lci_psr_sy_pin_i", platform=LAPTOP, n_localities=2)
    done = rt.new_latch(10)

    def sink(worker, i, blob):
        done.count_down()
        return None

    rt.register_action("sink", sink)

    def sender(worker):
        # mix of sizes: rendezvous chunks complete at data pull (late),
        # eager ones at injection (early) -> out-of-order sync signals
        for i in range(10):
            size = 30000 if i % 2 else 2000
            yield from rt.locality(0).apply(worker, 1, "sink", (i, "x"),
                                            arg_sizes=[8, size])

    rt.boot()
    rt.locality(0).spawn(sender)
    rt.run_until(done, max_events=3_000_000)
    pp0 = rt.localities[0].parcelport
    assert len(pp0.sync_pending) == 0
    # the scan actually cycled entries (some tests found nothing yet)
    assert pp0.stats.counters["sends_completed"] == 10


# ---------------------------------------------------------------------------
# runtime shutdown
# ---------------------------------------------------------------------------
def test_shutdown_stops_worker_loops():
    rt = make_runtime("lci", platform=LAPTOP, n_localities=1)
    rt.boot()
    rt.run_until(1000.0)
    rt.shutdown()
    assert not rt.running
    # after shutdown the event heap drains completely
    rt.sim.run(max_events=100_000)
    assert rt.sim.peek() == float("inf")


# ---------------------------------------------------------------------------
# reporting edge: single-point log plot guard
# ---------------------------------------------------------------------------
def test_ascii_plot_handles_degenerate_ranges():
    from repro.bench import Series
    from repro.bench.reporting import ascii_plot
    s = Series("flat")
    s.add(10.0, 5.0)
    s.add(10.0, 5.0)
    out = ascii_plot([s])
    assert "flat" in out
