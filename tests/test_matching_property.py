"""Property tests: indexed matchers vs the frozen linear-scan reference.

The indexed ``PostedQueue``/``UnexpectedQueue`` (repro.mpi_sim.matching)
must be observationally identical to the seed's linear scans
(repro.mpi_sim._seed_match) — same match, same deterministic ``scanned``
count, same container semantics — because ``scanned`` feeds straight into
simulated CPU charges and any divergence breaks the bit-identity contract.

Coverage here:

* randomized lockstep workloads over both posted-queue implementations —
  wildcard receives (ANY_SOURCE/ANY_TAG), non-recv entries that occupy
  scan positions without matching, cancel-path removals, and misses;
* the same for the unexpected queue, including duplicate message arrivals
  (the faulted-network dup path appends the same wire message twice);
* an end-to-end cross-check: a faulted (drop + corrupt) message-rate run
  live vs under the full frozen-reference stack
  (:func:`repro.bench.seedpaths.reference_models`).
"""

import random

import pytest

from repro.faults import FaultPlan
from repro.mpi_sim._seed_match import SeedPostedQueue, SeedUnexpectedQueue
from repro.mpi_sim.matching import PostedQueue, UnexpectedQueue
from repro.mpi_sim.request import ANY_SOURCE, ANY_TAG, Request
from repro.netsim.message import NetMsg

SEEDS = [1, 7, 42, 1234, 987654]

SRCS = [0, 1, 2, 3]
TAGS = [0, 1, 2, 5, 99]


def _assert_posted_equal(live: PostedQueue, seed: SeedPostedQueue) -> None:
    assert len(live) == len(seed)
    assert list(live) == list(seed)


@pytest.mark.parametrize("rng_seed", SEEDS)
def test_posted_queue_lockstep(rng_seed):
    rng = random.Random(rng_seed)
    live, seed = PostedQueue(), SeedPostedQueue()
    alive = []
    for _ in range(600):
        op = rng.random()
        if op < 0.45 or not alive:
            # post: mostly receives (some with wildcards), some non-recv
            # entries that occupy a scan position but never match
            kind = "recv" if rng.random() < 0.85 else "send"
            src = rng.choice(SRCS + [ANY_SOURCE, ANY_SOURCE])
            tag = rng.choice(TAGS + [ANY_TAG])
            req = Request(kind, src, 8, tag)
            live.append(req)
            seed.append(req)
            alive.append(req)
        elif op < 0.85:
            # probe: both implementations must report the same
            # (match, scanned) pair for an arbitrary (src, tag)
            src, tag = rng.choice(SRCS), rng.choice(TAGS + [7])
            got = live.match_pop(src, tag)
            want = seed.match_pop(src, tag)
            assert got == want, (src, tag, got, want)
            if got[0] is not None:
                alive.remove(got[0])
                assert got[0] not in live
        else:
            # cancel path: remove by identity from the middle of the list
            req = alive.pop(rng.randrange(len(alive)))
            live.remove(req)
            seed.remove(req)
            assert req not in live
        _assert_posted_equal(live, seed)
    # drain: every remaining receive must come out in the same order
    for src in SRCS:
        for tag in TAGS:
            while True:
                got = live.match_pop(src, tag)
                want = seed.match_pop(src, tag)
                assert got == want
                if got[0] is None:
                    break
    _assert_posted_equal(live, seed)


def test_posted_queue_remove_missing_raises_like_list():
    live, seed = PostedQueue(), SeedPostedQueue()
    req = Request("recv", 0, 8, 1)
    with pytest.raises(ValueError):
        live.remove(req)
    with pytest.raises(ValueError):
        seed.remove(req)
    live.append(req)
    seed.append(req)
    live.remove(req)
    seed.remove(req)
    with pytest.raises(ValueError):
        live.remove(req)
    with pytest.raises(ValueError):
        seed.remove(req)


@pytest.mark.parametrize("rng_seed", SEEDS)
def test_unexpected_queue_lockstep(rng_seed):
    rng = random.Random(rng_seed)
    live, seed = UnexpectedQueue(), SeedUnexpectedQueue()
    for _ in range(600):
        op = rng.random()
        if op < 0.5 or not len(live):
            msg = NetMsg(src=rng.choice(SRCS), dst=0, size=8, kind="eager",
                         tag=rng.choice(TAGS))
            live.append(msg)
            seed.append(msg)
            if rng.random() < 0.15:
                # duplicate arrival (faulted-network dup path): the same
                # wire message object queued twice
                live.append(msg)
                seed.append(msg)
        else:
            src = rng.choice(SRCS + [ANY_SOURCE])
            tag = rng.choice(TAGS + [ANY_TAG, 7])
            got = live.match_pop(src, tag)
            want = seed.match_pop(src, tag)
            assert got == want, (src, tag, got, want)
        assert len(live) == len(seed)
        assert list(live) == list(seed)


def test_faulted_run_matches_frozen_reference():
    """End-to-end: drop+corrupt faults, live vs the full frozen stack."""
    from repro.bench.message_rate import MessageRateParams, run_message_rate
    from repro.bench.seedpaths import reference_models

    params = MessageRateParams(msg_size=8, batch=25, total_msgs=300,
                               inject_rate_kps=200.0)
    plan = FaultPlan.parse("drop=0.05,corrupt=0.02")
    for config in ("mpi_i", "lci_psr_cq_pin_i"):
        res_live = run_message_rate(config, params, seed=11,
                                    fault_plan=plan).as_dict()
        with reference_models():
            res_ref = run_message_rate(config, params, seed=11,
                                       fault_plan=plan).as_dict()
        assert res_live == res_ref, config
