"""Negative-path tests: cancellation, shutdown mid-traffic, failure
reporting, and the bookkeeping leaks fault recovery can expose."""

from types import SimpleNamespace

import pytest

from repro import LAPTOP, make_runtime
from repro.hpx_rt import Parcel
from repro.lci_sim import (DEFAULT_LCI_PARAMS, CompletionQueue, LciDevice,
                           Synchronizer)
from repro.mpi_sim import DEFAULT_MPI_PARAMS, MpiComm
from repro.netsim import Fabric, TESTNET
from repro.parcelport.tagging import TagProvider
from repro.sim import Simulator


class FakeWorker:
    def __init__(self, sim):
        self.sim = sim

    def cpu(self, us):
        return self.sim.timeout(us)

    def lock(self, lk):
        yield lk.acquire()

    def lock_acquired(self, lk, t0):
        pass


# ---------------------------------------------------------------------------
# runtime shutdown with traffic still in flight
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("config", ["lci_psr_cq_pin_i", "mpi", "mpi_orig"])
def test_shutdown_with_inflight_sends_does_not_crash(config):
    rt = make_runtime(config, platform=LAPTOP, n_localities=2)
    got = []

    def sink(worker, idx, blob):
        got.append(idx)
        return None

    rt.register_action("sink", sink)

    def sender(worker):
        for i in range(30):
            yield from rt.locality(0).apply(worker, 1, "sink", (i, "b"),
                                            arg_sizes=[8, 20000])

    rt.boot()
    rt.locality(0).spawn(sender)
    rt.run_until(50.0)             # stop mid-traffic, chains in flight
    rt.shutdown()
    rt.sim.run(max_events=2_000_000)
    assert rt.running is False
    # partial delivery is fine; crashing or duplicating is not
    assert len(set(got)) == len(got)


# ---------------------------------------------------------------------------
# MPI cancellation
# ---------------------------------------------------------------------------
def _mpi_pair():
    sim = Simulator()
    fabric = Fabric(sim, TESTNET)
    a = MpiComm(sim, fabric.add_node(0), rank=0, params=DEFAULT_MPI_PARAMS)
    b = MpiComm(sim, fabric.add_node(1), rank=1, params=DEFAULT_MPI_PARAMS)
    return sim, FakeWorker(sim), a, b


def test_mpi_cancel_posted_recv_removes_from_matching():
    sim, w, a, b = _mpi_pair()
    out = {}

    def receiver():
        out["req"] = yield from b.irecv(w, 0, 64, tag=7)

    sim.process(receiver())
    sim.run()
    req = out["req"]
    assert req in b.posted
    assert b.cancel(req) is True
    assert req.cancelled and req.done
    assert req not in b.posted
    assert b.stats.counters["cancelled"] == 1
    # cancelling again is a no-op: the request is already complete
    assert b.cancel(req) is False
    assert b.stats.counters["cancelled"] == 1


def test_mpi_cancel_completed_request_is_refused():
    sim, w, a, b = _mpi_pair()
    out = {}

    def sender():
        out["req"] = yield from a.isend(w, 1, 8, tag=3, payload="x")

    sim.process(sender())
    sim.run()
    req = out["req"]
    assert req.done                      # eager send completed locally
    assert a.cancel(req) is False
    assert not req.cancelled


def test_mpi_traffic_still_flows_after_a_cancel():
    sim, w, a, b = _mpi_pair()
    out = {}

    def scenario():
        victim = yield from b.irecv(w, 0, 64, tag=5)
        b.cancel(victim)
        live = yield from b.irecv(w, 0, 64, tag=5)
        out["live"] = live
        yield from a.isend(w, 1, 64, tag=5, payload="ok")
        for _ in range(200):
            done = yield from b.test(w, out["live"])
            if done:
                return
            yield sim.timeout(5.0)

    sim.process(scenario())
    sim.run()
    assert out["live"].done and not out["live"].cancelled
    assert out["live"].value == "ok"


# ---------------------------------------------------------------------------
# LCI receive cancellation
# ---------------------------------------------------------------------------
def test_lci_cancel_recv_scoped_and_counted():
    sim = Simulator()
    fabric = Fabric(sim, TESTNET)
    dev = LciDevice(sim, fabric.add_node(0), rank=0,
                    params=DEFAULT_LCI_PARAMS)
    w = FakeWorker(sim)
    c1, c2 = Synchronizer(), Synchronizer()

    def poster():
        yield from dev.recvm(w, 9, 64, c1)
        yield from dev.recvm(w, 9, 64, c2)

    sim.process(poster())
    sim.run()
    # scoped: only the op completing into c1 goes away
    assert dev.cancel_recv(9, comp=c1) == 1
    assert dev.cancel_recv(9, comp=c1) == 0
    # unscoped: clears the rest of the bucket
    assert dev.cancel_recv(9) == 1
    assert dev.cancel_recv(9) == 0
    assert dev.stats.counters["recvs_cancelled"] == 2


# ---------------------------------------------------------------------------
# regression: TagProvider double release must not alias tags
# ---------------------------------------------------------------------------
def test_tag_provider_ignores_duplicate_release():
    sim = Simulator()
    prov = TagProvider(sim, max_tag=100)
    w = FakeWorker(sim)
    out = {}

    def scenario():
        tag = yield from prov.draw(w)
        # fault recovery can release the same tag twice: locally on
        # abort, then again when the late release message arrives
        yield from prov.release(w, tag)
        yield from prov.release(w, tag)
        t1 = yield from prov.draw(w)
        t2 = yield from prov.draw(w)
        out.update(tag=tag, t1=t1, t2=t2)

    sim.process(scenario())
    sim.run()
    assert prov.duplicate_releases == 1
    assert out["t1"] == out["tag"]       # free-listed tag is reused once
    assert out["t2"] != out["t1"]        # ...but never handed out twice


# ---------------------------------------------------------------------------
# regression: cancelled synchronizers must leave the pending scan
# ---------------------------------------------------------------------------
def test_cancelled_synchronizer_dropped_from_sync_scan():
    rt = make_runtime("lci_sr_sy_mt", platform=LAPTOP, n_localities=2)
    rt.boot()
    pp = rt.locality(0).parcelport
    dead, live = Synchronizer(), Synchronizer()
    dead.cancelled = True
    pp.sync_pending.append(dead)
    pp.sync_pending.append(live)
    w = FakeWorker(rt.sim)

    def scan():
        yield from pp._scan_syncs(w)

    rt.sim.process(scan())
    rt.sim.run(until=rt.sim.now + 50.0)  # bounded: pollers never drain
    assert dead not in pp.sync_pending   # dropped, not retested forever
    assert live in pp.sync_pending       # unsignaled ops keep waiting
    assert pp.stats.counters["syncs_cancelled"] == 1


# ---------------------------------------------------------------------------
# parcel-layer failure reporting
# ---------------------------------------------------------------------------
def _failed_msg(n_parcels):
    parcels = [Parcel("a", dest=1, src=0, args=(i,), arg_sizes=(8,))
               for i in range(n_parcels)]
    return SimpleNamespace(num_parcels=n_parcels, parcels=parcels)


def test_report_send_failure_invokes_hook_per_parcel():
    rt = make_runtime("mpi", platform=LAPTOP, n_localities=2)
    rt.boot()
    seen = []
    rt.on_parcel_failure = lambda p, exc: seen.append((p.args[0], exc))
    pl = rt.locality(0).parcel_layer
    boom = RuntimeError("retries exhausted")
    pl.report_send_failure(_failed_msg(3), boom)
    assert [s[0] for s in seen] == [0, 1, 2]
    assert all(s[1] is boom for s in seen)
    assert pl.stats.counters["messages_failed"] == 1
    assert pl.stats.counters["parcels_failed"] == 3


def test_failed_parcel_sample_is_bounded():
    rt = make_runtime("mpi", platform=LAPTOP, n_localities=2)
    rt.boot()
    pl = rt.locality(0).parcel_layer
    pl.report_send_failure(_failed_msg(200), RuntimeError("x"))
    pl.report_send_failure(_failed_msg(200), RuntimeError("x"))
    assert len(pl.failed_parcels) == pl._max_failed_kept
    assert pl.stats.counters["parcels_failed"] == 400


# ---------------------------------------------------------------------------
# connection-cache capacity restored after an aborted chain
# ---------------------------------------------------------------------------
def test_release_connection_restores_cache_capacity():
    rt = make_runtime("mpi", platform=LAPTOP, n_localities=2)
    rt.boot()
    loc = rt.locality(0)
    pl, pp = loc.parcel_layer, loc.parcelport
    conn = pp.make_connection(1)
    pl._conn_count[1] = 1                 # as if minted through the cache
    pl.release_connection(conn)
    assert pl._conn_count[1] == 0         # capacity back
    assert pl.stats.counters["connections_released"] == 1
    rt.sim.run(until=rt.sim.now + 50.0)   # the spawned drain must not blow up
