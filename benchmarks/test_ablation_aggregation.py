"""§4.1 ablation: message aggregation's mixed results at 8 B.

The paper: removing aggregation (send-immediate) improves lci_psr_cq_pin
by up to 80 %, while the no-immediate variants all sit near the same
~400 K/s plateau regardless of protocol (the parcel-queue/connection-cache
path is their shared bottleneck).
"""

from conftest import run_once

from repro.bench import ablation_aggregation


def test_ablation_aggregation_mixed_results(benchmark):
    result = run_once(benchmark, ablation_aggregation, quick=True)
    print("\n" + result.render())
    peaks = result.meta["peaks"]

    # immediate helps psr substantially (paper: up to +80 %)
    assert peaks["lci_psr_cq_pin_i"] > 1.3 * peaks["lci_psr_cq_pin"]

    # the two no-immediate variants share the aggregation-path ceiling
    lo = min(peaks["lci_psr_cq_pin"], peaks["lci_sr_cq_pin"])
    hi = max(peaks["lci_psr_cq_pin"], peaks["lci_sr_cq_pin"])
    assert hi / lo < 1.25

    # for sr the benefit of immediate is much smaller than for psr
    gain_psr = peaks["lci_psr_cq_pin_i"] / peaks["lci_psr_cq_pin"]
    gain_sr = peaks["lci_sr_cq_pin_i"] / peaks["lci_sr_cq_pin"]
    assert gain_psr > gain_sr
