"""Table 1: configuration abbreviations — regenerate and verify coverage."""

from conftest import run_once

from repro.bench import table_abbreviations
from repro.parcelport import ALL_LCI_VARIANTS, PPConfig


def test_table1_abbreviations(benchmark):
    out = run_once(benchmark, table_abbreviations)
    print("\n" + out)
    for abbrev in ("mpi", "lci", "sr", "psr", "sy", "cq", "pin", "mt", "i"):
        assert abbrev in out
    # every abbreviation composes into a parseable configuration
    for spec in ALL_LCI_VARIANTS + ["mpi", "mpi_i", "lci_psr_cq_pin"]:
        assert PPConfig.parse(spec).label == spec
