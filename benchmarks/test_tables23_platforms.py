"""Tables 2 & 3: the two system configurations as simulated platforms."""

from conftest import run_once

from repro.bench import platform_tables
from repro.hpx_rt.platform import EXPANSE, ROSTAM


def test_tables_2_and_3(benchmark):
    out = run_once(benchmark, platform_tables)
    print("\n" + out)
    # Table 2: Expanse — 128 cores, HDR IB
    assert EXPANSE.phys_cores_per_node == 128
    assert EXPANSE.max_nodes == 32
    assert "hdr-ib" in out
    # Table 3: Rostam — 40 cores, FDR IB
    assert ROSTAM.phys_cores_per_node == 40
    assert ROSTAM.max_nodes == 16
    assert "fdr-ib" in out
    # HDR is the faster interconnect, Expanse the bigger machine
    assert EXPANSE.network.bytes_per_us > ROSTAM.network.bytes_per_us
