"""Fig 7: single-message ping-pong latency vs message size (window 1).

Shape targets (paper §4.2):
* the LCI baseline (lci_psr_cq_pin, and its immediate variant) has lower
  latency than the MPI parcelport at every size;
* mpi_i is competitive below 1 KB (paper: within ~1.3x of the best LCI)
  but falls behind for larger messages (protocol switch in MPI/UCX);
* send-immediate always lowers LCI latency;
* latency increases with message size for everyone.
"""

from conftest import run_once

from repro.bench import fig7


def test_fig7_shape(benchmark):
    result = run_once(benchmark, fig7, quick=True, steps=15)
    print("\n" + result.render())
    lci_i = result.by_label("lci_psr_cq_pin_i")
    lci = result.by_label("lci_psr_cq_pin")
    mpi_i = result.by_label("mpi_i")
    mpi = result.by_label("mpi")

    # best LCI <= mpi_i everywhere; < mpi everywhere
    for x in lci_i.xs:
        assert lci_i.y_at(x) <= mpi_i.y_at(x) * 1.05, x
        assert lci_i.y_at(x) < mpi.y_at(x), x

    # mpi_i competitive at small sizes, worse at large ones
    assert mpi_i.y_at(8) / lci_i.y_at(8) < 1.6
    assert mpi_i.y_at(65536) / lci_i.y_at(65536) > 1.25

    # send-immediate always helps LCI latency
    for x in lci.xs:
        assert lci_i.y_at(x) < lci.y_at(x), x

    # latency grows with size
    for s in result.series:
        assert s.ys[-1] > s.ys[0]
