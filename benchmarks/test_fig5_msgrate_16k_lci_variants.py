"""Fig 5: 16 KiB message rate vs injection rate across the LCI variants.

Shape targets (paper §4.1): pinned-progress variants beat worker-progress
counterparts (paper: +17-50 %); completion queues at least match
synchronizers at the peak (paper: cq +25-30 % and much smoother).
"""

from conftest import run_once

from repro.bench import fig5


def test_fig5_shape(benchmark):
    result = run_once(benchmark, fig5, quick=True, total=600)
    print("\n" + result.render())
    peak = {s.label: s.peak for s in result.series}

    # dedicated progress thread helps for every protocol/completion pair
    for proto in ("psr", "sr"):
        for comp in ("cq", "sy"):
            assert peak[f"lci_{proto}_{comp}_pin_i"] > \
                1.1 * peak[f"lci_{proto}_{comp}_mt_i"], (proto, comp)

    # cq at least matches sy at the peak for the pinned variants
    assert peak["lci_psr_cq_pin_i"] >= 0.9 * peak["lci_psr_sy_pin_i"]

    # all variants actually move 16 KiB messages
    assert min(peak.values()) > 0
