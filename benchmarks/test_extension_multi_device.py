"""§7.2 future-work extension: multiple LCI devices per process.

The paper attributes the gap between the ~750 K/s parcelport peak and the
NIC's hardware limits to "contention on low-level network resources",
noting the parcelport "only uses one LCI device per process" and that
"replicating low-level network resources could greatly increase message
rates".  This repository implements that replication (per-device packet
pool, matching table, progress engine and RX channel).

Shape target: with worker-thread progress (where progress-engine
contention is the bottleneck), 4 devices raise the 8 B message rate by a
large factor; with a single pinned progress thread, extra devices do not
help (the one thread is still the serial consumer).
"""

from conftest import run_once

from repro.hpx_rt import HpxRuntime
from repro.hpx_rt.platform import EXPANSE
from repro.lci_sim import DEFAULT_LCI_PARAMS
from repro.parcelport import PPConfig, make_parcelport_factory

TOTAL = 2000
BATCH = 100


def _rate(config: str, num_devices: int) -> float:
    cfg = PPConfig.parse(config)
    lci_params = DEFAULT_LCI_PARAMS.with_(num_devices=num_devices)
    factory = make_parcelport_factory(cfg, lci_params=lci_params)
    rt = HpxRuntime(EXPANSE, 2, factory, immediate=cfg.immediate)
    state = {"received": 0}
    done = rt.new_future()

    def sink(worker, payload):
        state["received"] += 1
        if state["received"] == TOTAL:
            done.set_result(rt.now)
        return None

    rt.register_action("sink", sink)

    def make_task():
        def inject(worker):
            for _ in range(BATCH):
                yield from rt.locality(0).apply(worker, 1, "sink", ("d",),
                                                arg_sizes=[8])
        return inject

    rt.boot()
    for _ in range(TOTAL // BATCH):
        rt.locality(0).spawn(make_task())
    rt.run_until(done, max_events=20_000_000)
    return TOTAL / rt.now * 1e3


def test_multi_device_scaling(benchmark):
    def experiment():
        return {
            ("mt", 1): _rate("lci_psr_cq_mt_i", 1),
            ("mt", 4): _rate("lci_psr_cq_mt_i", 4),
            ("pin", 1): _rate("lci_psr_cq_pin_i", 1),
            ("pin", 4): _rate("lci_psr_cq_pin_i", 4),
        }

    rates = run_once(benchmark, experiment)
    for (mode, nd), r in sorted(rates.items()):
        print(f"  {mode:<4} devices={nd}  {r:8.1f} K msgs/s")

    # replicated devices greatly increase worker-progress message rates
    assert rates[("mt", 4)] > 2.0 * rates[("mt", 1)]
    # ...even past the single-device pinned-thread peak
    assert rates[("mt", 4)] > rates[("pin", 1)]
    # a single pinned progress thread cannot exploit extra devices
    assert rates[("pin", 4)] < 1.3 * rates[("pin", 1)]
