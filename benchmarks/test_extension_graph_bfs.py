"""Extension: the irregular graph workload the paper's introduction
motivates ("irregular problems such as graph algorithms").

Distributed BFS frontier exchange is exactly the multithreaded, irregular,
small-message traffic AMT communication layers exist for (LCI's first use
was distributed graph analytics, paper §2.1).  Shape target: the same
parcelport ordering as the microbenchmarks — best LCI, then MPI, with the
legacy TCP parcelport slowest — while all backends compute the *same* BFS.
"""

from conftest import run_once

from repro import LAPTOP, make_runtime
from repro.apps.graphs import DistributedBfs, make_graph
from repro.sim import RngPool

CONFIGS = ["tcp", "mpi", "mpi_i", "lci_psr_cq_pin_i"]


def test_graph_bfs_across_parcelports(benchmark):
    adj = make_graph(600, 8.0, RngPool(31).stream("g"))

    def experiment():
        out = {}
        reference = None
        for cfg in CONFIGS:
            rt = make_runtime(cfg, platform=LAPTOP, n_localities=4)
            bfs = DistributedBfs(rt, adj)
            res = bfs.run(root=0, max_events=30_000_000)
            if reference is None:
                ref_depth, ref_levels = bfs.reference_bfs(0)
                reference = (len(ref_depth), ref_levels)
            assert (res.visited, res.levels) == reference
            out[cfg] = res.teps
        return out

    teps = run_once(benchmark, experiment)
    for cfg in CONFIGS:
        print(f"  {cfg:<18} {teps[cfg] / 1e6:7.2f} MTEPS")

    assert teps["lci_psr_cq_pin_i"] > teps["mpi_i"]
    assert teps["lci_psr_cq_pin_i"] > 1.5 * teps["mpi"]
    assert teps["tcp"] < teps["mpi"]          # the legacy floor
