"""Fig 4: achieved message rate of 16 KiB messages vs injection rate,
MPI vs LCI.

Shape targets (paper §4.1): LCI out-rates MPI (paper: up to 30x at the
highest injection rates); both MPI variants' rates *decrease* as the
injection rate rises while LCI saturates and stays flat.
"""

from conftest import run_once

from repro.bench import fig4


def test_fig4_shape(benchmark):
    result = run_once(benchmark, fig4, quick=True, total=600)
    print("\n" + result.render())
    lci_i = result.by_label("lci_psr_cq_pin_i")
    mpi = result.by_label("mpi")
    mpi_i = result.by_label("mpi_i")

    # LCI wins at saturation (rightmost point = unlimited injection)
    assert lci_i.ys[-1] > 1.5 * mpi.ys[-1]
    assert lci_i.ys[-1] > 2.0 * mpi_i.ys[-1]

    # MPI rates decrease under injection pressure...
    assert mpi_i.ys[-1] < 0.8 * mpi_i.peak
    assert mpi.ys[-1] < 0.8 * mpi.peak
    # ...while LCI holds its saturated rate (within 20 % of peak)
    assert lci_i.ys[-1] > 0.8 * lci_i.peak
