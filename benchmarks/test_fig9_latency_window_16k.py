"""Fig 9: 16 KiB message latency vs window size (1-64 chains).

Shape targets (paper §4.2): for large messages the latency gap between
mpi_i and the best LCI widens with the window (paper: 2x at window 1 up
to 9.6x at window 64); latency rises with the window for every variant.
"""

from conftest import run_once

from repro.bench import fig9


def test_fig9_shape(benchmark):
    result = run_once(benchmark, fig9, quick=True, steps=10)
    print("\n" + result.render())
    lci_i = result.by_label("lci_psr_cq_pin_i")
    mpi_i = result.by_label("mpi_i")

    for s in result.series:
        assert s.ys[-1] > s.ys[0], s.label

    w_lo, w_hi = lci_i.xs[0], lci_i.xs[-1]
    gap_lo = mpi_i.y_at(w_lo) / lci_i.y_at(w_lo)
    gap_hi = mpi_i.y_at(w_hi) / lci_i.y_at(w_hi)
    # the mpi_i/lci gap grows with concurrency (paper: 2x -> 9.6x)
    assert gap_hi > gap_lo
    assert gap_hi > 1.3
