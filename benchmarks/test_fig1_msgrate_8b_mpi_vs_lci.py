"""Fig 1: achieved message rate of 8 B messages vs injection rate,
MPI vs LCI with/without the send-immediate optimization.

Shape targets (paper §4.1):
* every configuration tracks the injection rate before saturating;
* the best LCI variant (lci_psr_cq_pin_i) reaches the highest rate;
* lci_psr_cq_pin_i clearly out-rates both MPI variants;
* aggregation helps MPI under 8 B injection pressure: mpi saturates above
  mpi_i (the same mechanism behind the paper's mpi instability remark and
  its Fig 10 rescue; see EXPERIMENTS.md for the shape discussion).
"""

from conftest import run_once

from repro.bench import fig1


def test_fig1_shape(benchmark):
    result = run_once(benchmark, fig1, quick=True, total=2000)
    print("\n" + result.render())
    lci_i = result.by_label("lci_psr_cq_pin_i")
    lci = result.by_label("lci_psr_cq_pin")
    mpi = result.by_label("mpi")
    mpi_i = result.by_label("mpi_i")

    # low injection: achieved rate matches injection (within 15 %)
    for s in (lci_i, lci, mpi, mpi_i):
        assert s.ys[0] / s.xs[0] > 0.85

    # best LCI saturates far above both MPI variants
    assert lci_i.peak > 1.5 * mpi.peak
    assert lci_i.peak > 2.0 * mpi_i.peak

    # aggregation (no immediate) pins LCI near the parcel-queue ceiling,
    # below the immediate variant (paper: ~400 K/s vs ~750 K/s)
    assert lci.peak < lci_i.peak

    # aggregation relieves MPI's injection pressure: the aggregated mpi
    # saturates above the immediate mpi_i at 8 B
    assert mpi.peak > 1.2 * mpi_i.peak
