"""§3.1 ablation: the original vs improved MPI parcelport.

The paper: the two improvements (dynamic header with transmission-chunk
piggybacking, and replacing the tag-provider/tag-release protocol with an
atomic counter) "improve the application (Octo-Tiger) performance by about
20%".  Shape target: improved mpi beats mpi_orig on Octo-Tiger.
"""

from conftest import run_once

from repro.bench import ablation_mpi_pp


def test_ablation_original_vs_improved(benchmark):
    result = run_once(benchmark, ablation_mpi_pp, quick=True)
    print("\n" + result.render())
    app_ratio = result.meta["improved_over_original"]
    rate_ratio = result.meta["rate_improved_over_original"]
    print(f"improved/original: app {app_ratio:.3f}x, "
          f"8B message rate {rate_ratio:.3f}x (paper: ~1.2x at app level)")
    # microbenchmark: the improvements must clearly win (tag-release
    # traffic + static 512B headers cost the original on every message)
    assert 1.05 < rate_ratio < 2.0
    # application: improved never loses (our mini-app under-weights the
    # small-message traffic the header improvement targets, so the app
    # gain is smaller than the paper's ~20% — see EXPERIMENTS.md)
    assert app_ratio > 0.97
