"""Collectives workload: distributed-FFT transpose incast, five Table-1
configuration families under credit-based flow control.

Shape targets (EXPERIMENTS.md, "Collectives workload"):
* the LCI ordering survives the fan-in traffic shape: the one-sided
  pinned-progress variant clears the incast fastest, send/recv LCI
  next, the MPI parcelports last;
* throughput grows with problem size for every family (the incast is
  throttled, not collapsed, by the credit window);
* at the top of the size ladder flow control engages with no fault
  plan: credit stalls for every family, deferred puts for the
  immediate-mode ones, and a backlog_wait-dominated critical path for
  the LCI families while MPI keeps burning time under the progress
  lock.
"""

from conftest import run_once

from repro.bench import fft_sweep


def test_fft_sweep_shape(benchmark):
    result = run_once(benchmark, fft_sweep, quick=True)
    print("\n" + result.render())
    lci = result.by_label("lci_psr_cq_pin_i")
    lci_sr = result.by_label("lci_sr_cq_pin_i")
    mpi = result.by_label("mpi")
    mpi_i = result.by_label("mpi_i")
    mpi_orig = result.by_label("mpi_orig")

    # the paper's ordering under incast, at every ladder point
    for i in range(len(lci.xs)):
        assert lci.ys[i] > lci_sr.ys[i]
        assert lci.ys[i] > 1.2 * max(mpi.ys[i], mpi_i.ys[i],
                                     mpi_orig.ys[i])

    # bigger transposes move more points/s despite the tight window
    for s in (lci, lci_sr, mpi, mpi_i, mpi_orig):
        assert all(b > a for a, b in zip(s.ys, s.ys[1:])), s.label

    # top-of-ladder flow-control engagement, no fault plan involved
    counters = result.meta["counters"]
    for cfg, c in counters.items():
        assert c["credit_stalls"] > 0, cfg
    assert counters["lci_psr_cq_pin_i"]["puts_deferred"] > 0
    assert counters["mpi_i"]["puts_deferred"] > 0

    # critical path: incast backlog dominates for LCI; MPI still spends
    # a large share under the progress lock
    assert counters["lci_psr_cq_pin_i"]["backlog_pct"] > 50
    assert counters["lci_psr_cq_pin_i"]["lock_wait_pct"] == 0
    assert counters["mpi"]["lock_wait_pct"] > 30
    assert result.meta["dominant"]["lci_psr_cq_pin_i"] == "backlog_wait"
