"""Fig 11: Octo-Tiger strong scaling on Rostam (steps/s vs nodes).

Shape targets (paper §5): on the smaller, lower-core-count machine the
LCI advantage is modest (paper: up to 1.08x vs mpi_i, 1.04x vs mpi) and
there is **no** mpi_i collapse — the contrast with Fig 10 is the point.
"""

from conftest import run_once

from repro.bench import fig11


def test_fig11_shape(benchmark):
    result = run_once(benchmark, fig11, quick=True, node_counts=[2, 8, 16])
    print("\n" + result.render())
    lci = result.by_label("lci")
    mpi_i = result.by_label("mpi_i")
    r_mpi = result.by_label("lci / mpi")
    r_mpi_i = result.by_label("lci / mpi_i")

    # strong scaling works for everyone on Rostam
    assert lci.ys[-1] > lci.ys[0]
    assert mpi_i.ys[-1] > mpi_i.ys[0]

    # modest LCI gains, in the paper's regime (roughly 1.0-1.3x)
    for r in r_mpi.ys + r_mpi_i.ys:
        assert 0.9 < r < 1.6

    # crucially: no mpi_i collapse on the 40-core machine
    assert r_mpi_i.ys[-1] < 2.0
