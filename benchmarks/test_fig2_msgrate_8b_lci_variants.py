"""Fig 2: 8 B message rate vs injection rate across the eight LCI
send-immediate variants.

Shape targets (paper §4.1):
* dedicated progress thread (pin) beats worker-thread progress (mt) by a
  large factor (paper: up to 2.6x) — all mt variants cluster low;
* the one-sided putsendrecv header (psr) beats two-sided sendrecv (sr)
  for the pinned variants (paper: up to 3.5x).
"""

from conftest import run_once

from repro.bench import fig2


def test_fig2_shape(benchmark):
    result = run_once(benchmark, fig2, quick=True, total=2000)
    print("\n" + result.render())
    peak = {s.label: s.peak for s in result.series}

    # pin > mt for every (protocol, completion) pair
    for proto in ("psr", "sr"):
        for comp in ("cq", "sy"):
            pin = peak[f"lci_{proto}_{comp}_pin_i"]
            mt = peak[f"lci_{proto}_{comp}_mt_i"]
            assert pin > 1.3 * mt, (proto, comp, pin, mt)

    # dedicated progress thread gap in the paper's range (~2-3.5x)
    assert peak["lci_psr_cq_pin_i"] / peak["lci_psr_cq_mt_i"] > 2.0

    # one-sided put beats two-sided send/recv for the pinned cq variant
    assert peak["lci_psr_cq_pin_i"] > 1.3 * peak["lci_sr_cq_pin_i"]

    # all mt variants cluster (paper: "stuck at around 285K/s")
    mts = [v for k, v in peak.items() if k.endswith("mt_i")]
    assert max(mts) / min(mts) < 2.5
