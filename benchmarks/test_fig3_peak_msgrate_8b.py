"""Fig 3: the highest achieved 8 B message rate across all 11
configurations (the horizontal-bar figure).

Shape targets: lci_psr_cq_pin_i on top; every LCI pinned-cq variant above
both MPI variants; the no-immediate baseline in the middle band.
"""

from conftest import run_once

from repro.bench import fig3
from repro.bench.reporting import format_bar_chart


def test_fig3_shape(benchmark):
    result = run_once(benchmark, fig3, quick=True, total=2000)
    labels = result.meta["labels"]
    peaks = result.meta["peaks"]
    print("\n" + format_bar_chart(labels, peaks, unit=" K/s"))
    by = dict(zip(labels, peaks))

    # At 8 B a parcel is a single header message, so the completion type
    # is not exercised (the paper notes sy/cq only diverge with many
    # pending requests) — the winner is a psr/pin immediate variant.
    best = max(by, key=by.get)
    assert best in ("lci_psr_cq_pin_i", "lci_psr_sy_pin_i")
    assert by["lci_psr_cq_pin_i"] > 0.95 * by["lci_psr_sy_pin_i"]

    # the paper's headline: best LCI far above MPI at 8 B
    assert by["lci_psr_cq_pin_i"] > 1.5 * by["mpi"]
    assert by["lci_psr_cq_pin_i"] > 2.0 * by["mpi_i"]

    # aggregation-less psr/pin beats the aggregated baseline by ~2x
    # (paper: 750 vs ~400 K/s)
    ratio = by["lci_psr_cq_pin_i"] / by["lci_psr_cq_pin"]
    assert 1.3 < ratio < 3.5
