"""Fig 8: 8 B message latency vs window size (1-64 concurrent chains).

Shape targets (paper §4.2): latency rises with the window for every
configuration (more concurrent messages -> more software overhead); the
best LCI variant stays below mpi_i at large windows, and the gap widens
with concurrency; the no-immediate MPI variant degrades with windows more
gracefully than mpi_i relative to its small-window cost.
"""

from conftest import run_once

from repro.bench import fig8


def test_fig8_shape(benchmark):
    result = run_once(benchmark, fig8, quick=True, steps=10)
    print("\n" + result.render())
    lci_i = result.by_label("lci_psr_cq_pin_i")
    mpi_i = result.by_label("mpi_i")
    mpi = result.by_label("mpi")

    # latency increases with window size everywhere
    for s in result.series:
        assert s.ys[-1] > s.ys[0], s.label

    # best LCI below mpi_i at the largest window, and the gap grows
    w_lo, w_hi = lci_i.xs[0], lci_i.xs[-1]
    assert lci_i.y_at(w_hi) < mpi_i.y_at(w_hi)
    gap_lo = mpi_i.y_at(w_lo) / lci_i.y_at(w_lo)
    gap_hi = mpi_i.y_at(w_hi) / lci_i.y_at(w_hi)
    assert gap_hi > gap_lo

    # mpi (aggregated) loses less ground to mpi_i as windows grow
    # (the paper's mpi/mpi_i crossover direction)
    ratio_lo = mpi.y_at(w_lo) / mpi_i.y_at(w_lo)
    ratio_hi = mpi.y_at(w_hi) / mpi_i.y_at(w_hi)
    assert ratio_hi < ratio_lo
