"""Shared helpers for the per-figure benchmark suite.

Every benchmark regenerates (a scaled-down version of) one table or figure
from the paper and asserts its *shape* targets — who wins, in which
direction curves move — rather than absolute numbers (see DESIGN.md §3 and
EXPERIMENTS.md).  ``benchmark.pedantic(..., rounds=1)`` is used throughout:
each run is a deterministic discrete-event simulation, so repeating it
within one process measures nothing new.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
