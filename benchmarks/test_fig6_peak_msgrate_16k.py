"""Fig 6: the highest achieved 16 KiB message rate across all
configurations.

Shape targets: an LCI pin variant on top; LCI pinned variants above MPI;
the no-immediate baseline trails the immediate variants at 16 KiB (the
paper: aggregation cannot help large zero-copy messages).
"""

from conftest import run_once

from repro.bench import fig6
from repro.bench.reporting import format_bar_chart


def test_fig6_shape(benchmark):
    result = run_once(benchmark, fig6, quick=True, total=600)
    labels = result.meta["labels"]
    peaks = result.meta["peaks"]
    print("\n" + format_bar_chart(labels, peaks, unit=" K/s"))
    by = dict(zip(labels, peaks))

    best = max(by, key=by.get)
    assert best.startswith("lci_psr") and best.endswith("pin_i")

    # LCI's pinned immediate variants all beat both MPI variants
    for proto in ("psr", "sr"):
        for comp in ("cq", "sy"):
            assert by[f"lci_{proto}_{comp}_pin_i"] > by["mpi"]
            assert by[f"lci_{proto}_{comp}_pin_i"] > by["mpi_i"]

    # aggregation hurts 16 KiB messages: zero-copy chunks cannot batch
    assert by["lci_psr_cq_pin"] < by["lci_psr_cq_pin_i"]
